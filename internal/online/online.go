// Package online closes the serving→training loop: a class-partitioned
// replay buffer records every solved request (graph, winning backend,
// schedule, cost, latency, deadline outcome), a background trainer runs
// the internal/rl policy-gradient step over sampled minibatches with
// the portfolio winners as imitation teachers, and a shadow-evaluated
// promotion pipeline hot-reloads candidate agents into the solver
// registry only when they beat the incumbent by a configured margin on
// a held-out slice. The whole loop is deterministic under an injected
// clock and seeded RNG, so tests replay skewed traffic and assert
// promotion outcomes exactly.
package online

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"respect/internal/embed"
	"respect/internal/graph"
	"respect/internal/ptrnet"
	"respect/internal/rl"
	"respect/internal/rt"
	"respect/internal/sched"
	"respect/internal/solver"
)

// BackendName returns the per-class registry name the online loop
// serves its promoted agent under.
func BackendName(class string) string { return "rl-online-" + class }

// deadlineMissWeight down-weights periodic samples whose job missed its
// deadline: their teacher schedules came from solves that were already
// too slow for the stream and are weaker evidence.
const deadlineMissWeight = 0.5

// Config parameterizes the learning loop. Zero values take the
// documented defaults.
type Config struct {
	// Registry is the backend table promotions hot-reload into
	// (nil: the process-wide solver registry).
	Registry *solver.Registry
	// Agent seeds every class's incumbent (nil: a fresh model per
	// class, seeded from Seed).
	Agent *ptrnet.Model
	// Embed overrides the node-embedding configuration (nil: default).
	Embed *embed.Config
	// Classes fixes the set of traffic classes that learn.
	Classes []string
	// Interval is the background training-round period (default 30s).
	Interval time.Duration
	// Margin is the relative held-out cost improvement a candidate must
	// show over the incumbent to be promoted (default 0.02).
	Margin float64
	// WinnerSlack bounds how far above the recorded portfolio winners'
	// mean cost a promotable candidate may sit, as a multiple
	// (default 2.0): shadow evaluation is against both the incumbent
	// and the exact/heur winners.
	WinnerSlack float64
	// BufferCap is the per-class training-ring capacity (default 4096).
	BufferCap int
	// MinSamples is the training-partition floor below which a class
	// skips its round (default 64).
	MinSamples int
	// BatchSize is the minibatch size per gradient step (default 8).
	BatchSize int
	// Steps is the number of gradient steps per round (default 40).
	Steps int
	// LR is the Adam learning rate (default 5e-3).
	LR float64
	// Hidden is the fresh-model width when Agent is nil (default 32).
	Hidden int
	// Seed drives every RNG in the loop (minibatch draws, decode
	// sampling, fresh-model init).
	Seed int64
	// Clock injects the time source for the background loop
	// (nil: wall clock).
	Clock rt.Clock
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = solver.Default()
	}
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.Margin == 0 {
		c.Margin = 0.02
	}
	if c.WinnerSlack <= 0 {
		c.WinnerSlack = 2.0
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 4096
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 64
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.Steps <= 0 {
		c.Steps = 40
	}
	if c.LR == 0 {
		c.LR = 5e-3
	}
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.Clock == nil {
		c.Clock = rt.WallClock()
	}
	return c
}

// learner is one class's promotion state.
type learner struct {
	class     string
	seedIdx   int64
	incumbent *ptrnet.Model // the served model; swapped on promotion
	rounds    uint64        // training rounds run for this class (roundMu)

	promotions atomic.Uint64
	rejections atomic.Uint64
	gapBits    atomic.Uint64 // last shadow gap, math.Float64bits
}

// Manager owns the replay buffer, the per-class learners and the
// promotion pipeline.
type Manager struct {
	cfg  Config
	ecfg embed.Config
	buf  *Buffer

	roundMu  sync.Mutex // serializes Round; owns rng and learner.rounds
	rng      *rand.Rand
	learners map[string]*learner
	order    []string // sorted class names: deterministic round order

	trainRounds atomic.Uint64

	// roundHook, when set before Run, is called after every completed
	// background round (test seam).
	roundHook func()
}

// New builds a manager, seeds one incumbent per class and binds each
// under BackendName(class) in the registry via Replace, so portfolios
// can reference the online backends immediately.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("online: no classes to learn for")
	}
	ecfg := embed.Default()
	if cfg.Embed != nil {
		ecfg = *cfg.Embed
	}
	m := &Manager{
		cfg:      cfg,
		ecfg:     ecfg,
		buf:      NewBuffer(cfg.BufferCap, cfg.Classes),
		rng:      rand.New(rand.NewSource(cfg.Seed + 13)),
		learners: make(map[string]*learner, len(cfg.Classes)),
	}
	m.order = append(m.order, cfg.Classes...)
	sort.Strings(m.order)
	for i, class := range m.order {
		if _, dup := m.learners[class]; dup {
			return nil, fmt.Errorf("online: duplicate class %q", class)
		}
		var inc *ptrnet.Model
		if cfg.Agent != nil {
			inc = cfg.Agent.Clone()
		} else {
			inc = ptrnet.New(ptrnet.Config{InputDim: ecfg.Dim(), Hidden: cfg.Hidden, Seed: cfg.Seed + int64(i)*1000})
		}
		l := &learner{class: class, seedIdx: int64(i), incumbent: inc}
		if err := m.bindBackend(class, inc); err != nil {
			return nil, err
		}
		m.learners[class] = l
	}
	return m, nil
}

// bindBackend (re)binds the model under the class's online backend name.
// Dynamic registry handles resolve per call, so in-flight solves finish
// on the model they looked up while new requests see the replacement.
func (m *Manager) bindBackend(class string, model *ptrnet.Model) error {
	ecfg := m.ecfg
	return m.cfg.Registry.Replace(solver.NewFunc(BackendName(class), func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		if err := ctx.Err(); err != nil {
			return sched.Schedule{}, err
		}
		return rl.Schedule(model, ecfg, g, numStages)
	}))
}

// Record adds one solved request to the replay buffer.
func (m *Manager) Record(s Sample) {
	if s.Fingerprint == 0 && s.Graph != nil {
		s.Fingerprint = s.Graph.Fingerprint()
	}
	m.buf.Add(s)
}

// RoundResult reports one class's outcome within a training round.
type RoundResult struct {
	// Class is the traffic class.
	Class string
	// Skipped carries the reason no training happened ("" if trained).
	Skipped string
	// MeanReward is the final step's mean imitation reward.
	MeanReward float64
	// CandidateCost, IncumbentCost and WinnerCost are the shadow scores
	// (mean held-out schedule cost) of the trained candidate, the
	// serving incumbent, and the recorded portfolio winners.
	CandidateCost, IncumbentCost, WinnerCost float64
	// Gap is the relative improvement of the candidate over the
	// incumbent ((inc−cand)/inc).
	Gap float64
	// Promoted reports whether the candidate was hot-reloaded.
	Promoted bool
}

// Round runs one training-and-promotion round over every class in
// deterministic (sorted) order and returns the per-class outcomes.
// Safe for concurrent use with Record; rounds themselves serialize.
func (m *Manager) Round(ctx context.Context) []RoundResult {
	m.roundMu.Lock()
	defer m.roundMu.Unlock()
	results := make([]RoundResult, 0, len(m.order))
	trained := false
	for _, class := range m.order {
		if err := ctx.Err(); err != nil {
			break
		}
		res := m.roundClass(ctx, m.learners[class])
		if res.Skipped == "" {
			trained = true
		}
		results = append(results, res)
	}
	if trained {
		m.trainRounds.Add(1)
	}
	if m.cfg.Logf != nil {
		for _, r := range results {
			if r.Skipped != "" {
				m.cfg.Logf("online: class %s skipped: %s", r.Class, r.Skipped)
				continue
			}
			m.cfg.Logf("online: class %s cand=%.0f inc=%.0f winner=%.0f gap=%.4f promoted=%v",
				r.Class, r.CandidateCost, r.IncumbentCost, r.WinnerCost, r.Gap, r.Promoted)
		}
	}
	return results
}

// roundClass trains and shadow-evaluates one candidate for one class;
// callers hold roundMu.
func (m *Manager) roundClass(ctx context.Context, l *learner) RoundResult {
	res := RoundResult{Class: l.class}
	trainN, holdN := m.buf.Len(l.class)
	if trainN < m.cfg.MinSamples {
		res.Skipped = fmt.Sprintf("%d/%d training samples", trainN, m.cfg.MinSamples)
		return res
	}
	if holdN < 1 {
		res.Skipped = "no held-out samples"
		return res
	}

	// Train a candidate from a clone of the incumbent. A fresh trainer
	// per round keeps every round replayable from (seed, class, round#)
	// alone; rejected candidates are dropped, not resumed.
	l.rounds++
	candidate := l.incumbent.Clone()
	tr := rl.NewExampleTrainer(candidate, m.ecfg, rl.Config{
		Hidden:         m.cfg.Hidden,
		LR:             m.cfg.LR,
		Seed:           m.cfg.Seed + l.seedIdx*1_000_003 + int64(l.rounds)*7919,
		BatchSize:      m.cfg.BatchSize,
		ChallengeEvery: 10,
	})
	var last rl.IterStats
	for step := 0; step < m.cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			res.Skipped = "cancelled mid-round"
			return res
		}
		batch := m.buf.Minibatch(l.class, m.cfg.BatchSize, m.rng)
		last = tr.StepExamples(step, toExamples(batch))
	}
	res.MeanReward = last.MeanReward

	// Shadow evaluation on the held-out slice: candidate vs incumbent
	// vs the recorded portfolio winners.
	holdout := m.buf.Holdout(l.class, 0)
	res.CandidateCost = m.scoreModel(candidate, holdout)
	res.IncumbentCost = m.scoreModel(l.incumbent, holdout)
	res.WinnerCost = winnerScore(holdout)
	if res.IncumbentCost > 0 && !math.IsInf(res.CandidateCost, 1) {
		res.Gap = (res.IncumbentCost - res.CandidateCost) / res.IncumbentCost
	} else if math.IsInf(res.CandidateCost, 1) {
		res.Gap = math.Inf(-1)
	}
	l.gapBits.Store(math.Float64bits(res.Gap))

	if res.Gap >= m.cfg.Margin && res.CandidateCost <= m.cfg.WinnerSlack*res.WinnerCost {
		l.incumbent = candidate
		if err := m.bindBackend(l.class, candidate); err != nil {
			res.Skipped = "rebind failed: " + err.Error()
			l.rejections.Add(1)
			return res
		}
		res.Promoted = true
		l.promotions.Add(1)
	} else {
		l.rejections.Add(1)
	}
	return res
}

// toExamples converts buffer samples to rl imitation examples,
// down-weighting deadline-missed teachers.
func toExamples(batch []Sample) []rl.Example {
	exs := make([]rl.Example, len(batch))
	for i, s := range batch {
		w := 1.0
		if s.DeadlineMiss {
			w = deadlineMissWeight
		}
		exs[i] = rl.Example{G: s.Graph, Truth: s.Schedule, Weight: w}
	}
	return exs
}

// scoreModel is the shadow objective: the model's mean deployed
// schedule cost over the held-out slice (peak parameter bytes, with
// cross-stage traffic as an epsilon tiebreak). A decode failure scores
// +Inf — such a candidate can never promote.
func (m *Manager) scoreModel(model *ptrnet.Model, holdout []Sample) float64 {
	if len(holdout) == 0 {
		return math.Inf(1)
	}
	total := 0.0
	for _, s := range holdout {
		sc, err := rl.Schedule(model, m.ecfg, s.Graph, s.Schedule.NumStages)
		if err != nil {
			return math.Inf(1)
		}
		c := sc.Evaluate(s.Graph)
		total += float64(c.PeakParamBytes) + 1e-6*float64(c.CrossBytes)
	}
	return total / float64(len(holdout))
}

// winnerScore is the mean recorded cost of the portfolio winners over
// the held-out slice.
func winnerScore(holdout []Sample) float64 {
	if len(holdout) == 0 {
		return math.Inf(1)
	}
	total := 0.0
	for _, s := range holdout {
		total += float64(s.Cost.PeakParamBytes) + 1e-6*float64(s.Cost.CrossBytes)
	}
	return total / float64(len(holdout))
}

// Run executes training rounds every Interval until ctx is cancelled.
func (m *Manager) Run(ctx context.Context) {
	timer := m.cfg.Clock.NewTimer(m.cfg.Interval)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C():
		}
		m.Round(ctx)
		timer.Reset(m.cfg.Interval)
		if m.roundHook != nil {
			m.roundHook()
		}
	}
}

// TrainRounds returns the number of completed training rounds (rounds
// in which at least one class trained).
func (m *Manager) TrainRounds() uint64 { return m.trainRounds.Load() }

// Samples returns the lifetime recorded-sample count for a class.
func (m *Manager) Samples(class string) uint64 { return m.buf.Samples(class) }

// Dropped returns the count of samples rejected for an unknown class.
func (m *Manager) Dropped() uint64 { return m.buf.Dropped() }

// Promotions returns the promoted-candidate count for a class.
func (m *Manager) Promotions(class string) uint64 {
	if l, ok := m.learners[class]; ok {
		return l.promotions.Load()
	}
	return 0
}

// Rejections returns the dropped-candidate count for a class.
func (m *Manager) Rejections(class string) uint64 {
	if l, ok := m.learners[class]; ok {
		return l.rejections.Load()
	}
	return 0
}

// ShadowGap returns the last shadow-evaluation gap for a class
// ((incumbent − candidate)/incumbent; positive means the candidate was
// better).
func (m *Manager) ShadowGap(class string) float64 {
	if l, ok := m.learners[class]; ok {
		return math.Float64frombits(l.gapBits.Load())
	}
	return 0
}

// Classes returns the learning classes in deterministic order.
func (m *Manager) Classes() []string {
	return append([]string(nil), m.order...)
}

// ClassStats is the per-class slice of Stats.
type ClassStats struct {
	// Backend is the registry name the class's agent serves under.
	Backend string `json:"backend"`
	// Samples is the lifetime recorded-sample count.
	Samples uint64 `json:"samples"`
	// TrainSize and HoldoutSize are the current partition fills.
	TrainSize int `json:"train_size"`
	// HoldoutSize is the held-out partition fill.
	HoldoutSize int `json:"holdout_size"`
	// Promotions and Rejections count shadow-evaluation outcomes.
	Promotions uint64 `json:"promotions"`
	// Rejections counts dropped candidates.
	Rejections uint64 `json:"rejections"`
	// ShadowGap is the last relative candidate-vs-incumbent gap.
	ShadowGap float64 `json:"shadow_gap"`
}

// Stats is the online block served under /v1/stats.
type Stats struct {
	// TrainRounds counts completed training rounds.
	TrainRounds uint64 `json:"train_rounds"`
	// DroppedSamples counts records naming an unknown class.
	DroppedSamples uint64 `json:"dropped_samples,omitempty"`
	// Classes maps class name to its learning state.
	Classes map[string]ClassStats `json:"classes"`
}

// Stats snapshots the loop's state.
func (m *Manager) Stats() Stats {
	st := Stats{
		TrainRounds:    m.trainRounds.Load(),
		DroppedSamples: m.buf.Dropped(),
		Classes:        make(map[string]ClassStats, len(m.order)),
	}
	for _, class := range m.order {
		l := m.learners[class]
		train, hold := m.buf.Len(class)
		st.Classes[class] = ClassStats{
			Backend:     BackendName(class),
			Samples:     m.buf.Samples(class),
			TrainSize:   train,
			HoldoutSize: hold,
			Promotions:  l.promotions.Load(),
			Rejections:  l.rejections.Load(),
			ShadowGap:   math.Float64frombits(l.gapBits.Load()),
		}
	}
	return st
}
