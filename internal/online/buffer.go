package online

import (
	"sync"
	"sync/atomic"
	"time"

	"respect/internal/graph"
	"respect/internal/sched"
)

// Sample is one solved request observed by the serving path: the graph,
// the portfolio's winning backend and schedule (the imitation teacher),
// its cost, and the solve latency. Periodic-mode jobs additionally
// carry their deadline outcome from the rt dispatcher.
type Sample struct {
	// Class is the traffic class the request was admitted under.
	Class string
	// Graph is the scheduled model graph.
	Graph *graph.Graph
	// Fingerprint is Graph.Fingerprint(), recorded for dedup-free
	// attribution in stats and tests.
	Fingerprint uint64
	// Stages is the pipeline depth of the solve.
	Stages int
	// Backend names the portfolio backend that won the race.
	Backend string
	// Schedule is the winning schedule (the teacher signal).
	Schedule sched.Schedule
	// Cost is the winning schedule's objective.
	Cost sched.Cost
	// Latency is the solve wall time.
	Latency time.Duration
	// CacheHit records whether the result came from the class cache.
	CacheHit bool
	// Periodic marks samples from the rt dispatcher's periodic job path.
	Periodic bool
	// DeadlineMiss is set on periodic samples whose job finished past
	// its deadline; the learner down-weights these teachers.
	DeadlineMiss bool
}

// holdoutEvery routes every holdoutEvery-th sample (per class, by
// arrival index) to the held-out shadow-evaluation slice instead of the
// training ring, giving a deterministic split the trainer never sees.
const holdoutEvery = 4

// classBuffer is one class's partition: a training ring and a smaller
// held-out ring, both capacity-bounded.
type classBuffer struct {
	train     []Sample
	trainNext int
	hold      []Sample
	holdNext  int
	seen      uint64 // arrival index within the class

	added atomic.Uint64 // lifetime samples; read lock-free by metrics
}

// Buffer is the capacity-bounded, class-partitioned replay buffer. The
// class set is fixed at construction: metrics bind per-class counters
// to it, and samples for unknown classes are counted as dropped rather
// than silently growing the partition map.
type Buffer struct {
	mu      sync.Mutex
	cap     int
	holdCap int
	classes map[string]*classBuffer

	dropped atomic.Uint64
}

// NewBuffer builds a buffer with the given per-class training capacity
// for the given classes. A non-positive capacity defaults to 4096.
func NewBuffer(capacity int, classes []string) *Buffer {
	if capacity <= 0 {
		capacity = 4096
	}
	holdCap := capacity / holdoutEvery
	if holdCap < 1 {
		holdCap = 1
	}
	b := &Buffer{cap: capacity, holdCap: holdCap, classes: make(map[string]*classBuffer, len(classes))}
	for _, c := range classes {
		b.classes[c] = &classBuffer{}
	}
	return b
}

// Add records one sample, evicting the oldest entry of its partition
// when the ring is full. Samples for classes outside the configured set
// are dropped (and counted).
func (b *Buffer) Add(s Sample) {
	b.mu.Lock()
	cb, ok := b.classes[s.Class]
	if !ok {
		b.mu.Unlock()
		b.dropped.Add(1)
		return
	}
	// The buffer owns its teacher schedules: callers reuse theirs for
	// the response they are writing.
	s.Schedule = s.Schedule.Clone()
	if cb.seen%holdoutEvery == holdoutEvery-1 {
		if len(cb.hold) < b.holdCap {
			cb.hold = append(cb.hold, s)
		} else {
			cb.hold[cb.holdNext%len(cb.hold)] = s
			cb.holdNext++
		}
	} else {
		if len(cb.train) < b.cap {
			cb.train = append(cb.train, s)
		} else {
			cb.train[cb.trainNext%len(cb.train)] = s
			cb.trainNext++
		}
	}
	cb.seen++
	b.mu.Unlock()
	cb.added.Add(1)
}

// Samples returns the lifetime sample count for a class (0 for unknown
// classes).
func (b *Buffer) Samples(class string) uint64 {
	b.mu.Lock()
	cb, ok := b.classes[class]
	b.mu.Unlock()
	if !ok {
		return 0
	}
	return cb.added.Load()
}

// Dropped returns the count of samples rejected for naming a class
// outside the configured set.
func (b *Buffer) Dropped() uint64 { return b.dropped.Load() }

// Len returns the current training and held-out partition sizes for a
// class.
func (b *Buffer) Len(class string) (train, hold int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cb, ok := b.classes[class]
	if !ok {
		return 0, 0
	}
	return len(cb.train), len(cb.hold)
}

// Minibatch samples up to n training entries for a class without
// replacement, using the caller's RNG (the determinism seam: a seeded
// RNG makes the draw replayable).
func (b *Buffer) Minibatch(class string, n int, rng interface{ Intn(int) int }) []Sample {
	b.mu.Lock()
	defer b.mu.Unlock()
	cb, ok := b.classes[class]
	if !ok || len(cb.train) == 0 || n <= 0 {
		return nil
	}
	if n > len(cb.train) {
		n = len(cb.train)
	}
	// Partial Fisher-Yates over an index view: O(n) swaps, no
	// replacement, deterministic under a seeded rng.
	idx := make([]int, len(cb.train))
	for i := range idx {
		idx[i] = i
	}
	out := make([]Sample, n)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = cb.train[idx[i]]
	}
	return out
}

// Holdout returns a copy of the class's held-out slice (up to max
// entries, newest retained by the ring).
func (b *Buffer) Holdout(class string, max int) []Sample {
	b.mu.Lock()
	defer b.mu.Unlock()
	cb, ok := b.classes[class]
	if !ok {
		return nil
	}
	n := len(cb.hold)
	if max > 0 && n > max {
		n = max
	}
	out := make([]Sample, n)
	copy(out, cb.hold[:n])
	return out
}
