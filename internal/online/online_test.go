package online

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"respect/internal/graph"
	"respect/internal/rl"
	"respect/internal/rt"
	"respect/internal/solver"
)

// intree builds a binary-reduction DAG (every node has at most one
// successor), the graph family on which deployed schedule cost is
// genuinely order-sensitive — see the matching helper in internal/rl.
func intree(t testing.TB, leaves int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("intree")
	var cur []int
	for i := 0; i < leaves; i++ {
		cur = append(cur, g.AddNode(graph.Node{Name: "leaf", ParamBytes: int64(50 + rng.Intn(400)), OutBytes: int64(5 + rng.Intn(40))}))
	}
	for len(cur) > 1 {
		var next []int
		for i := 0; i+1 < len(cur); i += 2 {
			v := g.AddNode(graph.Node{Name: "merge", ParamBytes: int64(50 + rng.Intn(400)), OutBytes: int64(5 + rng.Intn(40))})
			g.AddEdge(cur[i], v)
			g.AddEdge(cur[i+1], v)
			next = append(next, v)
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return g.MustBuild()
}

// teacherSample solves g with the heuristic backend — the portfolio
// winner in a serving deployment — and wraps it as a recorded sample.
func teacherSample(t testing.TB, class string, g *graph.Graph, stages int) Sample {
	t.Helper()
	heur, err := solver.Lookup("heur")
	if err != nil {
		t.Fatal(err)
	}
	s, err := heur.Schedule(context.Background(), g, stages)
	if err != nil {
		t.Fatal(err)
	}
	return Sample{
		Class:    class,
		Graph:    g,
		Stages:   stages,
		Backend:  "heur",
		Schedule: s,
		Cost:     s.Evaluate(g),
		Latency:  time.Millisecond,
	}
}

func TestBufferCapacityAndPartition(t *testing.T) {
	b := NewBuffer(8, []string{"a"})
	g := intree(t, 4, 1)
	for i := 0; i < 40; i++ {
		b.Add(Sample{Class: "a", Graph: g, Schedule: teacherSample(t, "a", g, 2).Schedule})
	}
	train, hold := b.Len("a")
	if train > 8 {
		t.Fatalf("training ring exceeded capacity: %d", train)
	}
	if hold < 1 || hold > 2 {
		t.Fatalf("holdout fill %d, want 1..2 (cap/holdoutEvery)", hold)
	}
	if got := b.Samples("a"); got != 40 {
		t.Fatalf("lifetime samples %d, want 40", got)
	}
	b.Add(Sample{Class: "zzz", Graph: g})
	if b.Dropped() != 1 {
		t.Fatalf("dropped %d, want 1", b.Dropped())
	}
	if got := b.Samples("zzz"); got != 0 {
		t.Fatalf("unknown class counted: %d", got)
	}
}

func TestBufferMinibatchDeterministic(t *testing.T) {
	b := NewBuffer(32, []string{"a"})
	for i := 0; i < 20; i++ {
		b.Add(Sample{Class: "a", Graph: intree(t, 4, int64(i)), Fingerprint: uint64(i)})
	}
	draw := func() []uint64 {
		rng := rand.New(rand.NewSource(5))
		var fps []uint64
		for _, s := range b.Minibatch("a", 6, rng) {
			fps = append(fps, s.Fingerprint)
		}
		return fps
	}
	a, c := draw(), draw()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("same seed, different minibatch: %v vs %v", a, c)
		}
	}
	seen := map[uint64]bool{}
	for _, fp := range a {
		if seen[fp] {
			t.Fatalf("minibatch drew with replacement: %v", a)
		}
		seen[fp] = true
	}
}

// testConfig is a fast, promotion-friendly manager configuration bound
// to a private registry.
func testConfig(classes ...string) Config {
	return Config{
		Registry:   solver.NewRegistry(),
		Classes:    classes,
		Margin:     0.01,
		MinSamples: 12,
		BatchSize:  6,
		Steps:      40,
		Hidden:     16,
		Seed:       7,
	}
}

// feed replays a deterministic skewed workload (three graphs, 6:3:1)
// into the manager.
func feed(t testing.TB, m *Manager, class string, n int) {
	t.Helper()
	graphs := []*graph.Graph{intree(t, 8, 11), intree(t, 7, 12), intree(t, 6, 13)}
	samples := make([]Sample, len(graphs))
	for i, g := range graphs {
		samples[i] = teacherSample(t, class, g, 4)
	}
	for i := 0; i < n; i++ {
		switch {
		case i%10 < 6:
			m.Record(samples[0])
		case i%10 < 9:
			m.Record(samples[1])
		default:
			m.Record(samples[2])
		}
	}
}

func TestRoundSkipsBelowMinSamples(t *testing.T) {
	m, err := New(testConfig("interactive"))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, m, "interactive", 5)
	res := m.Round(context.Background())
	if len(res) != 1 || res[0].Skipped == "" {
		t.Fatalf("expected skip, got %+v", res)
	}
	if m.TrainRounds() != 0 {
		t.Fatalf("skipped round counted as training: %d", m.TrainRounds())
	}
}

func TestRoundPromotesAndHotReloads(t *testing.T) {
	cfg := testConfig("interactive")
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, m, "interactive", 60)

	name := BackendName("interactive")
	seed := m.learners["interactive"].incumbent.Clone()
	holdout := m.buf.Holdout("interactive", 0)
	if len(holdout) == 0 {
		t.Fatal("no holdout slice after feed")
	}

	var promoted bool
	var lastGap float64
	for round := 0; round < 6 && !promoted; round++ {
		res := m.Round(context.Background())
		promoted = res[0].Promoted
		lastGap = res[0].Gap
	}
	if !promoted {
		t.Fatalf("no promotion within 6 rounds (last gap %.4f, stats %+v)", lastGap, m.Stats())
	}
	if m.Promotions("interactive") < 1 {
		t.Fatalf("promotions counter %d", m.Promotions("interactive"))
	}
	if m.TrainRounds() < 1 {
		t.Fatal("train rounds not counted")
	}

	// Promotion ratchets on the holdout mean: the served incumbent must
	// now score strictly better than the seed agent on the held-out
	// slice (that is the promotion criterion, applied transitively).
	inc := m.learners["interactive"].incumbent
	if got, was := m.scoreModel(inc, holdout), m.scoreModel(seed, holdout); got >= was {
		t.Fatalf("promoted incumbent holdout score %.2f, seed %.2f: no improvement", got, was)
	}

	// Hot reload: the registry backend must produce exactly what the
	// promoted incumbent decodes, not the seed agent's output.
	after, err := cfg.Registry.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	g := intree(t, 8, 11)
	backendSched, err := after.Schedule(context.Background(), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	incSched, err := rl.Schedule(inc, m.ecfg, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range backendSched.Stage {
		if st != incSched.Stage[i] {
			t.Fatalf("registry backend diverges from promoted incumbent at node %d: %d vs %d", i, st, incSched.Stage[i])
		}
	}
}

func TestAdversarialMarginRejects(t *testing.T) {
	cfg := testConfig("interactive")
	cfg.Margin = 1e9 // unattainable: every candidate must be rejected
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, m, "interactive", 60)
	res := m.Round(context.Background())
	if res[0].Promoted {
		t.Fatalf("promotion under an unattainable margin: %+v", res[0])
	}
	if m.Rejections("interactive") != 1 || m.Promotions("interactive") != 0 {
		t.Fatalf("rejections=%d promotions=%d", m.Rejections("interactive"), m.Promotions("interactive"))
	}
	st := m.Stats()
	if st.Classes["interactive"].Rejections != 1 {
		t.Fatalf("stats rejections: %+v", st.Classes["interactive"])
	}
}

func TestRoundDeterministic(t *testing.T) {
	run := func() []RoundResult {
		m, err := New(testConfig("interactive"))
		if err != nil {
			t.Fatal(err)
		}
		feed(t, m, "interactive", 60)
		var all []RoundResult
		for i := 0; i < 2; i++ {
			all = append(all, m.Round(context.Background())...)
		}
		return all
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d diverged:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestRunLoopFiresOnClock(t *testing.T) {
	clock := rt.NewFakeClock(time.Unix(0, 0))
	cfg := testConfig("interactive")
	cfg.Clock = clock
	cfg.Interval = time.Minute
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, m, "interactive", 30)

	fired := make(chan struct{}, 8)
	m.roundHook = func() { fired <- struct{}{} }
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(ctx)
	}()
	// Run arms its timer on its own goroutine: keep advancing until the
	// tick lands (an Advance before the arm is simply absorbed).
	awaitRound := func() {
		for {
			clock.Advance(time.Minute)
			select {
			case <-fired:
				return
			default:
				runtime.Gosched()
			}
		}
	}
	awaitRound()
	if m.TrainRounds() < 1 {
		t.Fatalf("train rounds %d after a tick", m.TrainRounds())
	}
	awaitRound()
	cancel()
	<-done
}

func TestUnknownClassAccessors(t *testing.T) {
	m, err := New(testConfig("a"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Promotions("nope") != 0 || m.Rejections("nope") != 0 || m.ShadowGap("nope") != 0 {
		t.Fatal("unknown class accessors must be zero")
	}
	if got := m.Classes(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("classes %v", got)
	}
}
