// Package pipeline is a discrete-event executor for a deployed multi-stage
// Edge TPU system: the host runtime of the paper's Figure 2. Where package
// tpu computes closed-form steady-state latencies, this package *runs* the
// pipeline — every inference is an entity flowing host → stage 0 → host →
// stage 1 → …, with per-stage service times from the same hardware cost
// model, bounded inter-stage queues, and event-accurate clocks.
//
// The executor serves three purposes: it validates the analytic model
// (steady-state throughput must agree — tested), it exposes transient
// behaviour the closed form cannot (fill/drain, queue occupancy, stage
// utilization), and it is the natural place to run deployed sub-model
// images end to end.
package pipeline

import (
	"fmt"
	"sort"
	"time"

	"respect/internal/graph"
	"respect/internal/sched"
	"respect/internal/tpu"
)

// Config controls an execution run.
type Config struct {
	// Inferences is the number of inputs pushed through the pipe.
	Inferences int
	// QueueDepth bounds each inter-stage buffer (the host's per-device
	// staging buffers); 0 means depth 1 (rendezvous).
	QueueDepth int
}

// StageStats aggregates per-stage behaviour over a run.
type StageStats struct {
	// Busy is total service time.
	Busy time.Duration
	// Blocked is time spent output-blocked on a full downstream queue.
	Blocked time.Duration
	// Idle is time spent waiting for input.
	Idle time.Duration
	// Utilization is Busy / makespan.
	Utilization float64
	// MaxQueue is the peak occupancy of the stage's input queue.
	MaxQueue int
}

// Result is the outcome of an execution run.
type Result struct {
	// Makespan is the total wall clock from first input to last output.
	Makespan time.Duration
	// MeanLatency is the average per-inference end-to-end latency
	// (including queueing).
	MeanLatency time.Duration
	// Throughput is Inferences / Makespan, per second.
	Throughput float64
	// Stages are the per-stage statistics.
	Stages []StageStats
	// Completions holds each inference's completion time, ascending.
	Completions []time.Duration
}

// Run executes cfg.Inferences inputs through the schedule's pipeline on
// hw, using the same per-stage service times as the analytic simulator.
func Run(g *graph.Graph, s sched.Schedule, hw tpu.HW, cfg Config) (*Result, error) {
	if cfg.Inferences <= 0 {
		return nil, fmt.Errorf("pipeline: %d inferences", cfg.Inferences)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 1
	}
	rep, err := tpu.Simulate(g, s, hw)
	if err != nil {
		return nil, err
	}
	n := len(rep.Stages)

	// start[k][i]: when stage k begins inference i; finish[k][i] likewise.
	// A stage starts inference i when (a) the previous stage finished it,
	// (b) the stage itself finished inference i-1, and (c) the downstream
	// queue has room: stage k+1 must have *started* inference i-depth.
	finish := make([][]time.Duration, n)
	start := make([][]time.Duration, n)
	for k := 0; k < n; k++ {
		finish[k] = make([]time.Duration, cfg.Inferences)
		start[k] = make([]time.Duration, cfg.Inferences)
	}

	// Two passes are needed for back-pressure (stage k depends on stage
	// k+1's starts); iterate to a fixed point — with finite depth this
	// converges in at most n sweeps because blocking only propagates
	// upstream one stage per sweep.
	for sweep := 0; sweep < n+1; sweep++ {
		changed := false
		for i := 0; i < cfg.Inferences; i++ {
			for k := 0; k < n; k++ {
				var t time.Duration
				if k > 0 {
					t = finish[k-1][i]
				}
				if i > 0 && finish[k][i-1] > t {
					t = finish[k][i-1]
				}
				if k+1 < n && i >= depth {
					if bp := start[k+1][i-depth]; bp > t {
						t = bp
					}
				}
				f := t + rep.Stages[k].Total
				if start[k][i] != t || finish[k][i] != f {
					start[k][i] = t
					finish[k][i] = f
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	res := &Result{Stages: make([]StageStats, n)}
	last := finish[n-1][cfg.Inferences-1]
	res.Makespan = last
	res.Completions = make([]time.Duration, cfg.Inferences)
	var latSum time.Duration
	for i := 0; i < cfg.Inferences; i++ {
		res.Completions[i] = finish[n-1][i]
		latSum += finish[n-1][i] - start[0][i]
	}
	sort.Slice(res.Completions, func(a, b int) bool { return res.Completions[a] < res.Completions[b] })
	res.MeanLatency = latSum / time.Duration(cfg.Inferences)
	if last > 0 {
		res.Throughput = float64(cfg.Inferences) / last.Seconds()
	}

	for k := 0; k < n; k++ {
		st := &res.Stages[k]
		st.Busy = time.Duration(cfg.Inferences) * rep.Stages[k].Total
		// Idle: gaps between consecutive services plus lead-in.
		var gaps time.Duration
		for i := 1; i < cfg.Inferences; i++ {
			if d := start[k][i] - finish[k][i-1]; d > 0 {
				gaps += d
			}
		}
		st.Idle = start[k][0] + gaps
		// Blocked: time an inference sat finished upstream before this
		// stage could accept it (queueing delay attributed upstream).
		if k > 0 {
			for i := 0; i < cfg.Inferences; i++ {
				if d := start[k][i] - finish[k-1][i]; d > 0 {
					st.Blocked += d
				}
			}
		}
		if res.Makespan > 0 {
			st.Utilization = float64(st.Busy) / float64(res.Makespan)
			if st.Utilization > 1 {
				st.Utilization = 1
			}
		}
		// Peak input-queue occupancy just before each start: upstream
		// completions no later than the start, minus inferences already
		// consumed. FIFO makes finish[k-1] non-decreasing, so a binary
		// search counts completions.
		if k > 0 {
			up := finish[k-1]
			maxQ := 0
			for i := 0; i < cfg.Inferences; i++ {
				done := sort.Search(cfg.Inferences, func(j int) bool {
					return up[j] > start[k][i]
				})
				if q := done - i; q > maxQ {
					maxQ = q
				}
			}
			st.MaxQueue = maxQ
		}
	}
	return res, nil
}
