package pipeline

import (
	"math"
	"testing"
	"time"

	"respect/internal/graph"
	"respect/internal/heur"
	"respect/internal/models"
	"respect/internal/sched"
	"respect/internal/tpu"
)

func quietHW() tpu.HW {
	hw := tpu.Coral()
	hw.NoiseAmp = 0
	return hw
}

func testSetup(t testing.TB, name string, stages int) (*graph.Graph, sched.Schedule) {
	t.Helper()
	g := models.MustLoad(name)
	return g, sched.PostProcess(g, heur.GreedyBalanced(g, stages))
}

func TestRunMatchesAnalyticSteadyState(t *testing.T) {
	g, s := testSetup(t, "ResNet50", 4)
	hw := quietHW()
	rep, err := tpu.Simulate(g, s, hw)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	res, err := Run(g, s, hw, Config{Inferences: n, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Event-driven makespan must equal fill + (n-1) * bottleneck for an
	// unblocked pipe (deep queues): the analytic TotalFor formula.
	want := rep.TotalFor(n)
	diff := math.Abs(float64(res.Makespan - want))
	if diff/float64(want) > 0.01 {
		t.Fatalf("event makespan %v vs analytic %v", res.Makespan, want)
	}
	if math.Abs(res.Throughput-rep.Throughput())/rep.Throughput() > 0.05 {
		t.Fatalf("throughput %v vs analytic %v", res.Throughput, rep.Throughput())
	}
}

func TestBottleneckStageSaturates(t *testing.T) {
	g, s := testSetup(t, "ResNet152", 4)
	hw := quietHW()
	rep, err := tpu.Simulate(g, s, hw)
	if err != nil {
		t.Fatal(err)
	}
	bottleneck := 0
	for k, st := range rep.Stages {
		if st.Total == rep.Bottleneck {
			bottleneck = k
		}
	}
	res, err := Run(g, s, hw, Config{Inferences: 400, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if u := res.Stages[bottleneck].Utilization; u < 0.95 {
		t.Fatalf("bottleneck stage %d utilization %.3f, want ~1", bottleneck, u)
	}
	for k, st := range res.Stages {
		if st.Utilization > res.Stages[bottleneck].Utilization+1e-9 {
			t.Fatalf("stage %d busier than the bottleneck", k)
		}
	}
}

func TestCompletionsMonotone(t *testing.T) {
	g, s := testSetup(t, "Xception", 5)
	res, err := Run(g, s, quietHW(), Config{Inferences: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != 50 {
		t.Fatalf("%d completions", len(res.Completions))
	}
	for i := 1; i < len(res.Completions); i++ {
		if res.Completions[i] < res.Completions[i-1] {
			t.Fatal("completions not sorted")
		}
	}
	if res.MeanLatency <= 0 {
		t.Fatal("no latency")
	}
}

func TestShallowQueueCausesBlocking(t *testing.T) {
	// A fast stage feeding a slow stage must block with depth 1 but not
	// with a deep queue.
	g := graph.New("fastslow")
	g.AddNode(graph.Node{Name: "fast", ParamBytes: 1 << 10, OutBytes: 1 << 10, MACs: 1e6})
	g.AddNode(graph.Node{Name: "slow", ParamBytes: 12 << 20, OutBytes: 1 << 10, MACs: 5e9})
	g.AddEdge(0, 1)
	g.MustBuild()
	s := sched.Schedule{NumStages: 2, Stage: []int{0, 1}}
	hw := quietHW()

	shallow, err := Run(g, s, hw, Config{Inferences: 100, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Stages[0].Blocked != 0 {
		t.Fatal("blocked accounted on the wrong side")
	}
	if shallow.Stages[1].Blocked <= 0 {
		t.Fatal("no queueing delay at the slow stage with depth 1")
	}
	// Throughput is bottleneck-bound either way.
	rep, _ := tpu.Simulate(g, s, hw)
	if math.Abs(shallow.Throughput-rep.Throughput())/rep.Throughput() > 0.05 {
		t.Fatalf("shallow throughput %v vs analytic %v", shallow.Throughput, rep.Throughput())
	}
}

func TestQueueOccupancyBounded(t *testing.T) {
	g, s := testSetup(t, "ResNet101", 6)
	const depth = 3
	res, err := Run(g, s, quietHW(), Config{Inferences: 200, QueueDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	for k, st := range res.Stages {
		if st.MaxQueue > depth+1 {
			t.Fatalf("stage %d queue reached %d with depth %d", k, st.MaxQueue, depth)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	g, s := testSetup(t, "Xception", 4)
	if _, err := Run(g, s, quietHW(), Config{Inferences: 0}); err == nil {
		t.Fatal("0 inferences accepted")
	}
	bad := sched.Schedule{NumStages: 2, Stage: make([]int, 3)}
	if _, err := Run(g, bad, quietHW(), Config{Inferences: 1}); err == nil {
		t.Fatal("mismatched schedule accepted")
	}
}

func TestSingleInference(t *testing.T) {
	g, s := testSetup(t, "Xception", 4)
	hw := quietHW()
	res, err := Run(g, s, hw, Config{Inferences: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := tpu.Simulate(g, s, hw)
	if res.Makespan != rep.Latency {
		t.Fatalf("single-inference makespan %v vs fill latency %v", res.Makespan, rep.Latency)
	}
	if res.MeanLatency != rep.Latency {
		t.Fatalf("latency %v vs %v", res.MeanLatency, rep.Latency)
	}
}

func TestBetterScheduleBetterThroughput(t *testing.T) {
	// The event executor must preserve the analytic ordering between a
	// memory-balanced schedule and a skewed one on a big model.
	g := models.MustLoad("ResNet152")
	hw := quietHW()
	good := sched.PostProcess(g, heur.DPBudget(g, 6))
	bad := sched.PostProcess(g, heur.HuLevel(g, 6))
	rg, err := Run(g, good, hw, Config{Inferences: 200, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(g, bad, hw, Config{Inferences: 200, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rg.Throughput <= rb.Throughput {
		t.Fatalf("balanced %v <= skewed %v inf/s", rg.Throughput, rb.Throughput)
	}
}

func TestMakespanScalesLinearly(t *testing.T) {
	g, s := testSetup(t, "DenseNet121", 4)
	hw := quietHW()
	r100, err := Run(g, s, hw, Config{Inferences: 100, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	r200, err := Run(g, s, hw, Config{Inferences: 200, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	extra := r200.Makespan - r100.Makespan
	rep, _ := tpu.Simulate(g, s, hw)
	want := 100 * rep.Bottleneck
	if math.Abs(float64(extra-want))/float64(want) > 0.02 {
		t.Fatalf("marginal cost of 100 inferences %v, want %v", extra, want)
	}
	_ = time.Duration(0)
}
