package synth

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(4)
	if cfg.NumNodes != 30 || cfg.MaxDegree != 4 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{NumNodes: 1, MaxDegree: 2, MeanParamKB: 1, ActivationKB: 1},
		{NumNodes: 10, MaxDegree: 0, MeanParamKB: 1, ActivationKB: 1},
		{NumNodes: 10, MaxDegree: 2, MeanParamKB: 0, ActivationKB: 1},
		{NumNodes: 10, MaxDegree: 2, MeanParamKB: 1, ActivationKB: -1},
	}
	for i, cfg := range cases {
		if _, err := NewSampler(cfg, 1); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSampleRespectsBounds(t *testing.T) {
	for _, deg := range []int{2, 3, 4, 5, 6} {
		s, err := NewSampler(DefaultConfig(deg), 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			g := s.Sample()
			if g.NumNodes() != 30 {
				t.Fatalf("deg %d: |V| = %d", deg, g.NumNodes())
			}
			if g.MaxInDegree() > deg {
				t.Fatalf("deg %d: in-degree %d exceeds bound", deg, g.MaxInDegree())
			}
		}
	}
}

func TestSampleHitsDegreeBound(t *testing.T) {
	// The designated heavy node should make deg(V) == MaxDegree common.
	for _, deg := range []int{2, 4, 6} {
		s, err := NewSampler(DefaultConfig(deg), 7)
		if err != nil {
			t.Fatal(err)
		}
		hit := 0
		for i := 0; i < 50; i++ {
			if s.Sample().MaxInDegree() == deg {
				hit++
			}
		}
		if hit < 40 {
			t.Errorf("deg %d: bound hit only %d/50 times", deg, hit)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewSampler(DefaultConfig(3), 99)
	b, _ := NewSampler(DefaultConfig(3), 99)
	for i := 0; i < 10; i++ {
		ga, gb := a.Sample(), b.Sample()
		if ga.NumEdges() != gb.NumEdges() || ga.Depth() != gb.Depth() {
			t.Fatal("same seed produced different graphs")
		}
		for v := 0; v < ga.NumNodes(); v++ {
			if ga.Node(v).ParamBytes != gb.Node(v).ParamBytes {
				t.Fatal("same seed produced different node attributes")
			}
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, _ := NewSampler(DefaultConfig(3), 1)
	b, _ := NewSampler(DefaultConfig(3), 2)
	same := true
	for i := 0; i < 5 && same; i++ {
		ga, gb := a.Sample(), b.Sample()
		if ga.NumEdges() != gb.NumEdges() || ga.Depth() != gb.Depth() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical graph streams")
	}
}

func TestQuickAllSamplesAcyclicConnected(t *testing.T) {
	f := func(seed int64) bool {
		s, err := NewSampler(DefaultConfig(2+int(seed%5+5)%5), seed)
		if err != nil {
			return false
		}
		g := s.Sample()
		// MustBuild already proved acyclicity; check single-source
		// reachability style invariant: every non-first node has a parent.
		for v := 1; v < g.NumNodes(); v++ {
			if len(g.Pred(v)) == 0 {
				return false
			}
		}
		return g.Node(0).Kind.String() == "input"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleBatch(t *testing.T) {
	s, _ := NewSampler(DefaultConfig(2), 5)
	gs := s.SampleBatch(7)
	if len(gs) != 7 {
		t.Fatalf("batch size %d", len(gs))
	}
	names := map[string]bool{}
	for _, g := range gs {
		names[g.Name] = true
	}
	if len(names) != 7 {
		t.Error("batch graphs share names")
	}
}

func TestCurriculumRoundRobin(t *testing.T) {
	cs, err := NewCurriculum(30, []int{2, 3, 4, 5, 6}, 11)
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := map[int]int{}
	for i := 0; i < 50; i++ {
		g := cs.Sample()
		if d := g.MaxInDegree(); d > maxDeg[i%5] {
			maxDeg[i%5] = d
		}
	}
	// Bucket k must never exceed degree bound 2+k.
	for k := 0; k < 5; k++ {
		if maxDeg[k] > 2+k {
			t.Errorf("bucket %d: max degree %d > %d", k, maxDeg[k], 2+k)
		}
	}
	if _, err := NewCurriculum(30, nil, 0); err == nil {
		t.Error("empty curriculum accepted")
	}
}

func TestMemoryAttributesPlausible(t *testing.T) {
	s, _ := NewSampler(DefaultConfig(2), 3)
	g := s.Sample()
	anyParams := false
	for v := 0; v < g.NumNodes(); v++ {
		n := g.Node(v)
		if n.ParamBytes < 0 || n.OutBytes <= 0 {
			t.Fatalf("node %d has bad memory attrs: %+v", v, n)
		}
		if n.ParamBytes > 0 {
			anyParams = true
			if n.MACs <= 0 {
				t.Fatalf("node %d has params but no MACs", v)
			}
		}
	}
	if !anyParams {
		t.Error("no node carries parameters")
	}
}
