// Package synth implements the synthetic DAG sampler used to train RESPECT.
//
// Per the paper (§III-B, "Synthetic training dataset"), the RL agent is
// trained exclusively on randomly generated graphs with |V| = 30 whose
// complexity is controlled through the maximum in-degree deg(V) ∈ {2..6},
// with memory attributes chosen to mimic DNN computational graphs. The
// sampler here gives full control over both knobs and is deterministic for
// a given seed.
package synth

import (
	"fmt"
	"math/rand"

	"respect/internal/graph"
)

// Config controls the sampler.
type Config struct {
	// NumNodes is |V| of every sampled graph. The paper trains at 30.
	NumNodes int
	// MaxDegree is deg(V): the maximum number of incoming edges a node may
	// receive. The paper sweeps {2,3,4,5,6}.
	MaxDegree int
	// MeanParamKB is the mean per-node parameter footprint in KiB; node
	// footprints are drawn log-normally around it, mimicking the heavy
	// tail of conv-layer weights.
	MeanParamKB float64
	// ActivationKB is the mean per-edge activation size in KiB.
	ActivationKB float64
}

// DefaultConfig returns the paper's training configuration for a given
// degree bound.
func DefaultConfig(maxDegree int) Config {
	return Config{
		NumNodes:     30,
		MaxDegree:    maxDegree,
		MeanParamKB:  64,
		ActivationKB: 32,
	}
}

// Sampler draws random DAGs. It is not safe for concurrent use; create one
// per goroutine.
type Sampler struct {
	cfg Config
	rng *rand.Rand
	n   int // count of graphs sampled, used for naming
}

// NewSampler validates cfg and returns a deterministic sampler seeded with
// seed.
func NewSampler(cfg Config, seed int64) (*Sampler, error) {
	if cfg.NumNodes < 2 {
		return nil, fmt.Errorf("synth: NumNodes = %d, need >= 2", cfg.NumNodes)
	}
	if cfg.MaxDegree < 1 {
		return nil, fmt.Errorf("synth: MaxDegree = %d, need >= 1", cfg.MaxDegree)
	}
	if cfg.MeanParamKB <= 0 || cfg.ActivationKB <= 0 {
		return nil, fmt.Errorf("synth: memory attributes must be positive")
	}
	return &Sampler{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// Sample draws one random DAG. Every non-source node receives between 1 and
// MaxDegree incoming edges from earlier nodes (earlier in a random
// permutation), which guarantees acyclicity, connectivity to at least one
// source, and deg(V) <= MaxDegree. At least one node reaches exactly
// MaxDegree in-degree when the graph is large enough, so the complexity
// knob is tight.
func (s *Sampler) Sample() *graph.Graph {
	cfg := s.cfg
	g := graph.New(fmt.Sprintf("synth-%d-deg%d-%d", cfg.NumNodes, cfg.MaxDegree, s.n))
	s.n++

	for i := 0; i < cfg.NumNodes; i++ {
		kind := graph.OpConv
		switch s.rng.Intn(6) {
		case 0:
			kind = graph.OpDepthwiseConv
		case 1:
			kind = graph.OpAdd
		case 2:
			kind = graph.OpRelu
		}
		if i == 0 {
			kind = graph.OpInput
		}
		param := int64(0)
		if kind == graph.OpConv || kind == graph.OpDepthwiseConv {
			// Log-normal-ish: exponentiate a centered uniform to get the
			// heavy tail of real conv layers.
			f := s.rng.NormFloat64()*0.9 + 1
			if f < 0.05 {
				f = 0.05
			}
			param = int64(cfg.MeanParamKB * 1024 * f)
		}
		out := int64(cfg.ActivationKB * 1024 * (0.25 + s.rng.Float64()*1.5))
		macs := param * 196 // ~14x14 output positions per weight, conv-like
		g.AddNode(graph.Node{
			Name: fmt.Sprintf("op%d", i), Kind: kind,
			ParamBytes: param, OutBytes: out, MACs: macs,
		})
	}

	// One designated heavy node gets exactly MaxDegree parents (when
	// possible) so the sampled deg(V) matches the config tightly.
	heavy := -1
	if cfg.NumNodes > cfg.MaxDegree {
		heavy = cfg.MaxDegree + s.rng.Intn(cfg.NumNodes-cfg.MaxDegree)
	}
	for v := 1; v < cfg.NumNodes; v++ {
		k := 1 + s.rng.Intn(cfg.MaxDegree)
		if k > v {
			k = v
		}
		if v == heavy && cfg.MaxDegree <= v {
			k = cfg.MaxDegree
		}
		for _, u := range s.rng.Perm(v)[:k] {
			g.AddEdge(u, v)
		}
	}
	return g.MustBuild()
}

// SampleBatch draws n graphs.
func (s *Sampler) SampleBatch(n int) []*graph.Graph {
	out := make([]*graph.Graph, n)
	for i := range out {
		out[i] = s.Sample()
	}
	return out
}

// CurriculumSampler interleaves samplers across deg(V) ∈ degrees, matching
// the paper's training set of 200k graphs per degree in {2..6}.
type CurriculumSampler struct {
	samplers []*Sampler
	next     int
}

// NewCurriculum builds one sampler per degree with distinct sub-seeds.
func NewCurriculum(numNodes int, degrees []int, seed int64) (*CurriculumSampler, error) {
	if len(degrees) == 0 {
		return nil, fmt.Errorf("synth: empty degree list")
	}
	cs := &CurriculumSampler{}
	for i, d := range degrees {
		cfg := DefaultConfig(d)
		cfg.NumNodes = numNodes
		sm, err := NewSampler(cfg, seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		cs.samplers = append(cs.samplers, sm)
	}
	return cs, nil
}

// Sample draws from the next degree bucket, round-robin.
func (cs *CurriculumSampler) Sample() *graph.Graph {
	g := cs.samplers[cs.next].Sample()
	cs.next = (cs.next + 1) % len(cs.samplers)
	return g
}
