// Package heur implements the heuristic scheduling baselines the paper
// discusses (§II): the greedy parameter-balanced partitioner believed to
// drive Google's Edge TPU compiler, Hu's level algorithm, list scheduling,
// force-directed scheduling, an exact-on-a-fixed-order dynamic program
// (the "adaptive budgeting" style of Ahn et al.), and simulated annealing.
//
// All heuristics return schedules satisfying pipeline monotonicity; callers
// apply sched.PostProcess before hardware deployment, exactly as the paper
// does for every scheduler.
package heur

import (
	"math"
	"math/rand"

	"respect/internal/graph"
	"respect/internal/sched"
)

// GreedyBalanced emulates the commercial Edge TPU compiler's pipeline
// partitioner: walk a fixed topological order and cut a new segment
// whenever the running parameter count exceeds the balanced budget
// total/n. This is the documented behaviour of coral's --num_segments
// splitter and the paper's "heuristic method" baseline.
func GreedyBalanced(g *graph.Graph, numStages int) sched.Schedule {
	s, err := sched.SequenceToSchedule(g, g.TopoView(), numStages)
	if err != nil {
		// Topo order over the graph's own nodes cannot fail validation.
		panic("heur: GreedyBalanced: " + err.Error())
	}
	return s
}

// HuLevel schedules by ASAP level bands: nodes are bucketed by topological
// level and levels are split across stages so each stage holds a contiguous
// level range with roughly equal node counts — Hu's algorithm adapted from
// unit-latency processors to pipeline partitioning.
func HuLevel(g *graph.Graph, numStages int) sched.Schedule {
	s := sched.NewSchedule(g.NumNodes(), numStages)
	depth := g.Depth() + 1
	for v := 0; v < g.NumNodes(); v++ {
		st := g.ASAP(v) * numStages / depth
		if st >= numStages {
			st = numStages - 1
		}
		s.Stage[v] = st
	}
	return s
}

// ListSchedule is a classic list scheduler driven by a ready priority
// queue: repeatedly place the ready node with the longest remaining
// critical path into the current stage, opening the next stage when the
// stage's parameter budget fills. Unlike GreedyBalanced it reorders
// independent nodes to pack stages tighter.
func ListSchedule(g *graph.Graph, numStages int) sched.Schedule {
	n := g.NumNodes()
	// Critical-path-to-sink length per node (in MACs-weighted ops).
	cp := make([]int64, n)
	topo := g.TopoView()
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		var best int64
		for _, w := range g.Succ(v) {
			if cp[w] > best {
				best = cp[w]
			}
		}
		cp[v] = best + 1 + g.Node(v).MACs/1e6
	}

	total := g.TotalParamBytes()
	budget := (total + int64(numStages) - 1) / int64(numStages)
	if budget < 1 {
		budget = 1
	}

	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.Pred(v))
	}
	var ready []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	s := sched.NewSchedule(n, numStages)
	stage, acc := 0, int64(0)
	for len(ready) > 0 {
		// Pick the ready node with the longest critical path (ties by ID).
		bi := 0
		for i := 1; i < len(ready); i++ {
			if cp[ready[i]] > cp[ready[bi]] ||
				(cp[ready[i]] == cp[ready[bi]] && ready[i] < ready[bi]) {
				bi = i
			}
		}
		v := ready[bi]
		ready = append(ready[:bi], ready[bi+1:]...)

		p := g.Node(v).ParamBytes
		if acc > 0 && acc+p > budget && stage < numStages-1 {
			stage++
			acc = 0
		}
		s.Stage[v] = stage
		acc += p
		for _, w := range g.Succ(v) {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	return s
}

// ForceDirected adapts Paulin & Knight's force-directed scheduling to
// pipeline partitioning: nodes are placed one at a time (most-constrained
// first) into the feasible stage window [maxParentStage, numStages), at
// the stage minimizing a "force" equal to the projected increase in the
// squared stage-memory distribution.
func ForceDirected(g *graph.Graph, numStages int) sched.Schedule {
	n := g.NumNodes()
	s := sched.NewSchedule(n, numStages)
	mem := make([]float64, numStages)
	depth := g.Depth() + 1

	// Place in topological order (parents first) so the feasible window is
	// known; most-constrained ordering is approximated by topo position.
	for _, v := range g.TopoView() {
		lo := 0
		for _, p := range g.Pred(v) {
			if s.Stage[p] > lo {
				lo = s.Stage[p]
			}
		}
		// The ALAP level caps how late this node may run while leaving its
		// descendants room, mapped proportionally onto stages.
		hi := (g.ALAP(v)*numStages)/depth + 1
		if hi > numStages {
			hi = numStages
		}
		if hi <= lo {
			hi = lo + 1
		}
		m := float64(g.Node(v).ParamBytes)
		best, bestForce := lo, math.Inf(1)
		for st := lo; st < hi; st++ {
			force := (mem[st] + m) * (mem[st] + m)
			for k := 0; k < numStages; k++ {
				if k != st {
					force += mem[k] * mem[k]
				}
			}
			if force < bestForce {
				bestForce, best = force, st
			}
		}
		s.Stage[v] = best
		mem[best] += m
	}
	return s
}

// DPBudget computes the optimal segmentation of the graph's deterministic
// topological order into numStages contiguous segments, minimizing peak
// segment parameter memory (an O(|V|² · n) dynamic program in the spirit
// of memory-aware adaptive budgeting). It is exact over that single order,
// making it both a strong heuristic and the incumbent seed for the exact
// solver's branch and bound.
func DPBudget(g *graph.Graph, numStages int) sched.Schedule {
	return DPBudgetOrder(g, g.TopoView(), numStages)
}

// DPBudgetOrder is DPBudget over a caller-supplied linear extension; it
// delegates to the shared DP in package sched.
func DPBudgetOrder(g *graph.Graph, order []int, numStages int) sched.Schedule {
	s, err := sched.SequenceToScheduleDP(g, order, numStages)
	if err != nil {
		panic("heur: DPBudgetOrder: " + err.Error())
	}
	return s
}

// Annealed improves a seed schedule by simulated annealing over segment
// boundaries of the deterministic topological order: moves shift one cut
// point by one position; acceptance follows the Metropolis rule on the
// lexicographic (peak, cross) objective scalarized in bytes.
func Annealed(g *graph.Graph, numStages int, steps int, seed int64) sched.Schedule {
	order := g.TopoView()
	n := len(order)
	rng := rand.New(rand.NewSource(seed))

	// Represent the schedule as cut points 0 <= c1 <= ... <= c_{n-1} <= n.
	cuts := make([]int, numStages-1)
	base := DPBudget(g, numStages)
	// Derive initial cuts from the DP seed.
	idx := 0
	for i, v := range order {
		for idx < len(cuts) && base.Stage[v] > idx {
			cuts[idx] = i
			idx++
		}
	}
	for ; idx < len(cuts); idx++ {
		cuts[idx] = n
	}

	build := func(cuts []int) sched.Schedule {
		s := sched.NewSchedule(n, numStages)
		st := 0
		for i, v := range order {
			for st < len(cuts) && i >= cuts[st] {
				st++
			}
			s.Stage[v] = st
		}
		return s
	}
	score := func(c sched.Cost) float64 {
		return float64(c.PeakParamBytes) + float64(c.CrossBytes)/1e4
	}

	cur := build(cuts)
	curScore := score(cur.Evaluate(g))
	best, bestScore := cur, curScore
	if steps < 1 {
		return best
	}
	temp0 := curScore/10 + 1
	for step := 0; step < steps; step++ {
		if len(cuts) == 0 {
			break
		}
		i := rng.Intn(len(cuts))
		delta := 1
		if rng.Intn(2) == 0 {
			delta = -1
		}
		old := cuts[i]
		nc := old + delta
		lo, hi := 0, n
		if i > 0 {
			lo = cuts[i-1]
		}
		if i < len(cuts)-1 {
			hi = cuts[i+1]
		}
		if nc < lo || nc > hi {
			continue
		}
		cuts[i] = nc
		cand := build(cuts)
		candScore := score(cand.Evaluate(g))
		temp := temp0 * math.Exp(-3*float64(step)/float64(steps))
		if candScore <= curScore || rng.Float64() < math.Exp((curScore-candScore)/math.Max(temp, 1e-9)) {
			cur, curScore = cand, candScore
			if curScore < bestScore {
				best, bestScore = cur, curScore
			}
		} else {
			cuts[i] = old
		}
	}
	return best
}
