package heur

import (
	"math/rand"
	"testing"
	"testing/quick"

	"respect/internal/graph"
	"respect/internal/models"
	"respect/internal/sched"
)

func randomDAG(seed int64, maxN int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxN-1)
	g := graph.New("rand")
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{ParamBytes: int64(rng.Intn(1000)), OutBytes: 1 + int64(rng.Intn(100))})
	}
	for v := 1; v < n; v++ {
		for _, u := range rng.Perm(v)[:1+rng.Intn(min(v, 2))] {
			g.AddEdge(u, v)
		}
	}
	return g.MustBuild()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type heuristic struct {
	name string
	fn   func(*graph.Graph, int) sched.Schedule
}

func all() []heuristic {
	return []heuristic{
		{"GreedyBalanced", GreedyBalanced},
		{"HuLevel", HuLevel},
		{"ListSchedule", ListSchedule},
		{"ForceDirected", ForceDirected},
		{"DPBudget", DPBudget},
		{"Annealed200", func(g *graph.Graph, n int) sched.Schedule { return Annealed(g, n, 200, 1) }},
	}
}

func TestAllHeuristicsValidOnRandomDAGs(t *testing.T) {
	for _, h := range all() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			f := func(seed int64) bool {
				g := randomDAG(seed, 40)
				for _, ns := range []int{1, 2, 4, 6} {
					s := h.fn(g, ns)
					if err := s.Validate(g); err != nil {
						t.Logf("seed %d stages %d: %v", seed, ns, err)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllHeuristicsValidOnModels(t *testing.T) {
	for _, name := range []string{"Xception", "ResNet50", "DenseNet121"} {
		g := models.MustLoad(name)
		for _, h := range all() {
			s := h.fn(g, 4)
			if err := s.Validate(g); err != nil {
				t.Errorf("%s on %s: %v", h.name, name, err)
			}
		}
	}
}

func TestDPBudgetOptimalOverOrder(t *testing.T) {
	// DPBudget must never do worse than GreedyBalanced on the same order.
	f := func(seed int64) bool {
		g := randomDAG(seed, 30)
		for _, ns := range []int{2, 3, 5} {
			dp := DPBudget(g, ns).Evaluate(g)
			gr := GreedyBalanced(g, ns).Evaluate(g)
			if dp.PeakParamBytes > gr.PeakParamBytes {
				t.Logf("seed %d ns %d: dp %v > greedy %v", seed, ns, dp, gr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDPBudgetExactOnUniformChain(t *testing.T) {
	g := graph.New("chain")
	for i := 0; i < 12; i++ {
		g.AddNode(graph.Node{ParamBytes: 10})
	}
	for i := 1; i < 12; i++ {
		g.AddEdge(i-1, i)
	}
	g.MustBuild()
	s := DPBudget(g, 4)
	c := s.Evaluate(g)
	if c.PeakParamBytes != 30 {
		t.Errorf("peak = %d, want 30", c.PeakParamBytes)
	}
}

func TestDPBudgetSingleStage(t *testing.T) {
	g := randomDAG(3, 20)
	s := DPBudget(g, 1)
	if s.Evaluate(g).PeakParamBytes != g.TotalParamBytes() {
		t.Error("single stage peak must equal total")
	}
}

func TestAnnealedNeverWorseThanSeed(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 25)
		dp := DPBudget(g, 3).Evaluate(g)
		an := Annealed(g, 3, 300, seed).Evaluate(g)
		// Annealed keeps the best-seen schedule, which starts at the DP
		// seed, so peak can only improve or stay (cross may trade).
		return an.PeakParamBytes <= dp.PeakParamBytes ||
			// allow equality-class swaps where cross improved
			(an.PeakParamBytes == dp.PeakParamBytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHuLevelBandsMonotone(t *testing.T) {
	g := models.MustLoad("ResNet50")
	s := HuLevel(g, 6)
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Succ(u) {
			if s.Stage[u] > s.Stage[v] {
				t.Fatalf("HuLevel violated edge (%d,%d)", u, v)
			}
		}
	}
	// All six stages should be populated on a 517-level-deep... 168-deep net.
	used := map[int]bool{}
	for _, st := range s.Stage {
		used[st] = true
	}
	if len(used) != 6 {
		t.Errorf("HuLevel used %d stages, want 6", len(used))
	}
}

func TestListScheduleBalancesBetterThanHu(t *testing.T) {
	// On real models the budget-driven list scheduler should produce a
	// lower memory peak than level-band splitting, which ignores memory.
	g := models.MustLoad("ResNet101")
	ls := ListSchedule(g, 4).Evaluate(g)
	hu := HuLevel(g, 4).Evaluate(g)
	if ls.PeakParamBytes > hu.PeakParamBytes {
		t.Errorf("list %v worse than hu %v", ls, hu)
	}
}

func TestGreedyBalancedDeterministic(t *testing.T) {
	g := models.MustLoad("Xception")
	a := GreedyBalanced(g, 5)
	b := GreedyBalanced(g, 5)
	if sched.Agreement(a, b) != 1 {
		t.Error("GreedyBalanced not deterministic")
	}
}

func TestPostProcessKeepsHeuristicsDeployable(t *testing.T) {
	g := models.MustLoad("ResNet50")
	for _, h := range all() {
		s := sched.PostProcess(g, h.fn(g, 4))
		if err := s.Validate(g); err != nil {
			t.Errorf("%s post-processed invalid: %v", h.name, err)
		}
		if !s.SameStageChildrenOK(g) {
			t.Errorf("%s post-processed violates children rule", h.name)
		}
	}
}
