// Multi-model co-deployment: the paper's flow "takes single or multiple
// DNN models and the number of pipeline stages as inputs". This example
// schedules MobileNet and ResNet50 *jointly* onto one 4-stage pipeline —
// the exact solver balances their combined parameter memory — and compares
// against deploying each model on its own dedicated split of the pipe.
package main

import (
	"fmt"
	"log"
	"time"

	"respect"
)

func main() {
	log.SetFlags(0)

	mobilenet, err := respect.LoadModel("MobileNet")
	if err != nil {
		log.Fatal(err)
	}
	resnet, err := respect.LoadModel("ResNet50")
	if err != nil {
		log.Fatal(err)
	}
	joint, err := respect.MergeGraphs(mobilenet, resnet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint graph %s: |V|=%d, %.1f MiB parameters\n",
		joint.Name, joint.NumNodes(), float64(joint.TotalParamBytes())/(1<<20))

	const stages = 4
	hw := respect.CoralHW()

	// Co-scheduled: one exact solve over the union.
	s, cost, optimal := respect.ScheduleExact(joint, stages, 60*time.Second)
	s = respect.PostProcess(joint, s)
	fmt.Printf("\nco-scheduled on %d stages (optimal=%v): %v\n", stages, optimal, cost)
	rep, err := respect.Simulate(joint, s, hw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  bottleneck %v -> %.0f joint inferences/s\n", rep.Bottleneck, rep.Throughput())

	// Dedicated split: MobileNet on 1 stage, ResNet50 on the other 3 —
	// the natural hand partition by model size.
	sm, _, _ := respect.ScheduleExact(mobilenet, 1, time.Second)
	sr, _, _ := respect.ScheduleExact(resnet, 3, 30*time.Second)
	sm = respect.PostProcess(mobilenet, sm)
	sr = respect.PostProcess(resnet, sr)
	repM, err := respect.Simulate(mobilenet, sm, hw)
	if err != nil {
		log.Fatal(err)
	}
	repR, err := respect.Simulate(resnet, sr, hw)
	if err != nil {
		log.Fatal(err)
	}
	// Both sub-pipelines run concurrently; the joint rate is limited by
	// the slower one.
	dedicated := repM.Bottleneck
	if repR.Bottleneck > dedicated {
		dedicated = repR.Bottleneck
	}
	fmt.Printf("\ndedicated split (1 + 3 stages):\n")
	fmt.Printf("  MobileNet bottleneck %v, ResNet50 bottleneck %v\n", repM.Bottleneck, repR.Bottleneck)
	fmt.Printf("  joint rate limited to %.0f inferences/s\n", float64(time.Second)/float64(dedicated))

	fmt.Printf("\nco-scheduling advantage: %.2fx\n",
		float64(dedicated)/float64(rep.Bottleneck))
}
