// ImageNet pipeline study: reproduce the paper's headline scenario —
// large residual networks on 4/5/6-stage pipelined Edge TPUs — showing
// how memory-aware scheduling pays off as per-stage parameter pressure
// exceeds the 8 MiB on-chip cache, and how the gains grow with stage
// count (paper Figure 4's trend).
package main

import (
	"fmt"
	"log"
	"time"

	"respect"
)

func main() {
	log.SetFlags(0)

	agent, err := respect.Train(respect.TrainConfig{
		Hidden: 48, Iterations: 200, BatchSize: 16, LR: 2e-3, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	hw := respect.CoralHW()
	for _, name := range []string{"ResNet101v2", "ResNet152", "InceptionResNetv2"} {
		g, err := respect.LoadModel(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%.1f MiB parameters)\n", name, float64(g.TotalParamBytes())/(1<<20))
		fmt.Printf("%6s  %14s  %14s  %14s  %8s  %10s\n", "stages", "compiler", "RESPECT", "exact", "speedup", "mJ/inf(RL)")
		for _, stages := range []int{4, 5, 6} {
			comp := respect.ScheduleCompiler(g, stages)
			rlS, err := agent.Schedule(g, stages)
			if err != nil {
				log.Fatal(err)
			}
			exS, _, _ := respect.ScheduleExact(g, stages, 30*time.Second)
			exS = respect.PostProcess(g, exS)

			lc, err := respect.MeasureInference(g, comp, hw)
			if err != nil {
				log.Fatal(err)
			}
			lr, err := respect.MeasureInference(g, rlS, hw)
			if err != nil {
				log.Fatal(err)
			}
			le, err := respect.MeasureInference(g, exS, hw)
			if err != nil {
				log.Fatal(err)
			}
			repRL, err := respect.Simulate(g, rlS, hw)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%6d  %14v  %14v  %14v  %7.2fx  %10.2f\n",
				stages, lc, lr, le, float64(lc)/float64(lr), repRL.EnergyPerInference*1e3)
		}
	}
}
