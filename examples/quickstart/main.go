// Quickstart: train a small RESPECT agent, schedule ResNet50 onto a
// 4-stage Edge TPU pipeline, and compare it against the commercial
// compiler baseline and the exact optimum on the pipeline simulator.
package main

import (
	"fmt"
	"log"
	"time"

	"respect"
)

func main() {
	log.SetFlags(0)

	// 1. Train an agent on synthetic graphs (the paper's data-independent
	//    setup, scaled down to run in under a minute on a laptop CPU).
	fmt.Println("training RESPECT agent on synthetic DAGs...")
	agent, err := respect.TrainWithProgress(
		respect.TrainConfig{Hidden: 48, Iterations: 150, BatchSize: 16, LR: 2e-3, Seed: 1},
		func(iter int, reward float64) {
			if iter%25 == 0 {
				fmt.Printf("  iter %3d: mean imitation reward %.3f\n", iter, reward)
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load a real ImageNet computational graph from the model zoo.
	g, err := respect.LoadModel("ResNet50")
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("\nResNet50 computational graph: |V|=%d deg=%d depth=%d\n", st.V, st.Deg, st.Depth)

	// 3. Schedule it three ways.
	const stages = 4
	rlSched, err := agent.Schedule(g, stages)
	if err != nil {
		log.Fatal(err)
	}
	compSched := respect.ScheduleCompiler(g, stages)
	exSched, exCost, optimal := respect.ScheduleExact(g, stages, 30*time.Second)
	exSched = respect.PostProcess(g, exSched)

	fmt.Printf("\nobjective (peak per-stage parameter memory):\n")
	fmt.Printf("  compiler heuristic: %v\n", compSched.Evaluate(g))
	fmt.Printf("  RESPECT (RL):       %v\n", rlSched.Evaluate(g))
	fmt.Printf("  exact (optimal=%v): %v\n", optimal, exCost)

	// 4. Simulate 1000 pipelined inferences on the Coral platform model.
	hw := respect.CoralHW()
	fmt.Printf("\nsimulated mean per-inference latency (10 rounds x 1000 inferences):\n")
	for _, c := range []struct {
		name string
		s    respect.Schedule
	}{{"compiler", compSched}, {"RESPECT", rlSched}, {"exact", exSched}} {
		lat, err := respect.MeasureInference(g, c.s, hw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %v\n", c.name, lat)
	}
}
