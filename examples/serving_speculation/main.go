// Serving with speculative warm-cache scheduling: boots the HTTP
// scheduling service in-process with a deliberately tiny cache, replays
// skewed traffic (one hot model hammered between churning cold graphs),
// and shows the speculation loop at work — popularity-aware eviction
// keeps the hot entry resident, mutations of it are pre-scheduled, and
// the stats report which hits speculation earned. The same behaviour is
// `respect-serve -speculate` over the network.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"respect"
	"respect/internal/serve"
)

func post(base string, body map[string]any) (map[string]any, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/schedule", "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("schedule: HTTP %d", resp.StatusCode)
	}
	var out map[string]any
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

func main() {
	log.SetFlags(0)

	cfg := respect.ServeConfig{
		CacheSize:  16, // small on purpose: cold churn fights the hot entry for slots
		WarmModels: []string{},
		Classes: map[respect.ServeClass]respect.ServeClassPolicy{
			respect.ServeInteractive: {
				Budget:        time.Second,
				Backends:      []string{"heur"},
				MaxConcurrent: 8,
				MaxQueue:      16,
				Warm:          true,
			},
		},
		Speculation: serve.SpeculationConfig{
			Enabled:  true,
			Interval: 20 * time.Millisecond, // scan fast so the demo is quick
		},
	}
	srv, err := respect.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Run owns the listener and starts the background loops (zoo warm-up,
	// speculative warmers) — the same lifecycle as cmd/respect-serve.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	colds, err := respect.SampleSyntheticGraphs(16, 24, 3, 42)
	if err != nil {
		log.Fatal(err)
	}
	coldJSON := make([]json.RawMessage, len(colds))
	for i, g := range colds {
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			log.Fatal(err)
		}
		coldJSON[i] = buf.Bytes()
	}

	fmt.Println("replaying skewed traffic: hot ResNet50 + unique cold synthetic graphs")
	hits := 0
	for round := 0; round < 8; round++ {
		r, err := post(base, map[string]any{"model": "ResNet50", "stages": 4})
		if err != nil {
			log.Fatal(err)
		}
		if r["cache_hit"] == true {
			hits++
		}
		for _, cold := range coldJSON[round*2 : round*2+2] {
			if _, err := post(base, map[string]any{"graph": cold, "stages": 4}); err != nil {
				log.Fatal(err)
			}
		}
		time.Sleep(30 * time.Millisecond) // let a speculation pass run
	}
	fmt.Printf("hot-model cache hits: %d/8 rounds (cache holds 16 entries, 16 cold graphs churned past)\n", hits)

	// A quiet moment lets the speculation passes refill what the churn
	// displaced; the client never asked for 5 stages — speculation
	// mutated the hot instance ahead of demand.
	time.Sleep(60 * time.Millisecond)
	r, err := post(base, map[string]any{"model": "ResNet50", "stages": 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first-ever request for 5 stages: cache_hit=%v speculative_hit=%v\n",
		r["cache_hit"], r["speculative_hit"])

	stats := srv.Stats()
	if s := stats.Speculation; s != nil {
		fmt.Printf("speculation: %d tracked keys, warms evicted/popular/mutation = %d/%d/%d, %d attributed hits\n",
			s.TrackedKeys, s.WarmsEvicted, s.WarmsPopular, s.WarmsMutation, s.Hits)
	}

	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}
