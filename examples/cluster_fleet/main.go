// Fleet-scale sharded serving, in-process: boots three replicas that
// know each other via a static peer list, routes distinct graphs through
// one front door to show consistent-hash forwarding to each graph's home
// shard, then kills a replica and shows the membership probes marking it
// dead, the ring rebalancing, and the surviving replicas answering every
// request. The same behaviour over the network is
//
//	respect-serve -addr :8080 -advertise http://10.0.0.1:8080 \
//	    -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//
// on each box. Membership normally advances on background probe loops;
// the demo drives deterministic ProbeOnce rounds instead so it finishes
// in milliseconds.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	"respect/internal/graph"
	"respect/internal/serve"
)

// replica is one in-process fleet member.
type replica struct {
	url string
	srv *serve.Server
	ts  *httptest.Server
}

// newFleet binds n listeners first (so every config can carry the full
// peer URL list), then starts a server on each.
func newFleet(n int) []*replica {
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*replica, n)
	for i := range lns {
		srv, err := serve.New(serve.Config{
			WarmModels: []string{},
			Cluster: serve.ClusterConfig{
				Advertise: urls[i],
				Peers:     append([]string(nil), urls...),
				Client:    &http.Client{Timeout: 2 * time.Second},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		ts := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: srv}}
		ts.Start()
		nodes[i] = &replica{url: urls[i], srv: srv, ts: ts}
	}
	return nodes
}

// probeRound advances membership one deterministic step on every live
// replica.
func probeRound(nodes []*replica) {
	for _, n := range nodes {
		if n != nil {
			n.srv.Cluster().ProbeOnce(context.Background())
		}
	}
}

// demoGraph builds a small chain whose parameters vary with seed, so
// every seed yields a distinct fingerprint — and a distinct home shard.
func demoGraph(seed int) []byte {
	g := graph.New(fmt.Sprintf("fleet-%d", seed))
	prev := -1
	for i := 0; i < 4+seed%5; i++ {
		id := g.AddNode(graph.Node{
			Name:       fmt.Sprintf("n%d", i),
			ParamBytes: int64(1000 + 977*seed + i),
			OutBytes:   int64(8 + i),
			MACs:       int64(100 + seed),
		})
		if prev >= 0 {
			g.AddEdge(prev, id)
		}
		prev = id
	}
	if err := g.Build(); err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{"graph": json.RawMessage(buf.Bytes()), "stages": 3})
	if err != nil {
		log.Fatal(err)
	}
	return body
}

// schedule posts one graph to the front door and reports which shard
// answered (empty = solved locally by the front door itself).
func schedule(frontDoor string, body []byte) (shard string, err error) {
	resp, err := http.Post(frontDoor+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("schedule: HTTP %d", resp.StatusCode)
	}
	return resp.Header.Get(serve.ForwardedToHeader), nil
}

func main() {
	nodes := newFleet(3)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.ts.Close()
			}
		}
	}()
	fmt.Println("fleet of 3 replicas:")
	for i, n := range nodes {
		fmt.Printf("  replica %d at %s\n", i, n.url)
	}

	// One probe round and everyone has seen everyone answer a heartbeat.
	probeRound(nodes)

	// Route 12 distinct graphs through replica 0: each one is solved on
	// its home shard, wherever the fingerprint hashes.
	const graphs = 12
	byShard := map[string]int{}
	for seed := 0; seed < graphs; seed++ {
		shard, err := schedule(nodes[0].url, demoGraph(seed))
		if err != nil {
			log.Fatal(err)
		}
		if shard == "" {
			shard = nodes[0].url + " (local)"
		}
		byShard[shard]++
	}
	fmt.Printf("\n%d graphs posted to replica 0, solved by home shard:\n", graphs)
	for i, n := range nodes {
		local := byShard[n.url+" (local)"] + byShard[n.url]
		fmt.Printf("  replica %d: %d\n", i, local)
	}
	cs := nodes[0].srv.ClusterStats()
	fmt.Printf("replica 0 forwarding: relayed=%d errors=%d\n", cs.ForwardsRelayed, cs.ForwardErrors)

	// Kill replica 2. Three consecutive failed probe rounds (DeadAfter's
	// default) take it alive -> suspect -> dead, and the ring rebuilds.
	fmt.Println("\nkilling replica 2...")
	nodes[2].ts.Close()
	dead := nodes[2].url
	nodes[2] = nil
	for round := 0; round < 3; round++ {
		probeRound(nodes)
	}
	st, _ := nodes[0].srv.Cluster().PeerState(dead)
	fmt.Printf("replica 0 now sees replica 2 as %q after %d rebalances\n",
		st, nodes[0].srv.Cluster().Rebalances())

	// The same 12 graphs again: the dead shard's keys have rehashed to
	// the survivors, so every request still gets an answer.
	failures := 0
	for seed := 0; seed < graphs; seed++ {
		if _, err := schedule(nodes[0].url, demoGraph(seed)); err != nil {
			failures++
		}
	}
	if failures > 0 {
		log.Fatalf("%d requests lost after the kill", failures)
	}
	fmt.Printf("all %d graphs answered by the surviving replicas — zero lost requests\n", graphs)
}
