// Synthetic-training walkthrough: inspect the sampler's graphs, train an
// agent while logging the learning curve, persist the weights, and verify
// generalization from 30-node synthetic DAGs to a 429-node real model —
// the paper's generalizability claim in miniature.
package main

import (
	"fmt"
	"log"
	"path/filepath"
	"time"

	"respect"
)

func main() {
	log.SetFlags(0)

	// The training distribution: |V|=30 graphs across deg(V) in 2..6.
	graphs, err := respect.SampleSyntheticGraphs(3, 30, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synthetic training samples:")
	for _, g := range graphs {
		s := g.Stats()
		fmt.Printf("  %s: |V|=%d deg=%d depth=%d\n", g.Name, s.V, s.Deg, s.Depth)
	}

	fmt.Println("\ntraining (watch the imitation reward climb):")
	start := time.Now()
	agent, err := respect.TrainWithProgress(
		respect.TrainConfig{Hidden: 48, Iterations: 250, BatchSize: 16, LR: 2e-3, Seed: 11},
		func(iter int, reward float64) {
			if iter%25 == 0 {
				fmt.Printf("  iter %3d  reward %.3f\n", iter, reward)
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v\n", time.Since(start).Round(time.Millisecond))

	path := filepath.Join(".", "respect-agent.gob")
	if err := agent.Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved weights to %s\n", path)

	// Generalization: the agent never saw a graph larger than 30 nodes;
	// schedule a 429-node DenseNet and compare against the exact optimum.
	g, err := respect.LoadModel("DenseNet121")
	if err != nil {
		log.Fatal(err)
	}
	s, err := agent.Schedule(g, 4)
	if err != nil {
		log.Fatal(err)
	}
	got := s.Evaluate(g)
	_, opt, _ := respect.ScheduleExact(g, 4, 30*time.Second)
	fmt.Printf("\nDenseNet121 @ 4 stages (|V|=%d, 14x the training size):\n", g.NumNodes())
	fmt.Printf("  RESPECT peak memory: %v\n", got)
	fmt.Printf("  exact optimal peak:  %v\n", opt)
	gap := float64(got.PeakParamBytes-opt.PeakParamBytes) / float64(opt.PeakParamBytes) * 100
	fmt.Printf("  gap-to-optimal:      %.2f%%\n", gap)
}
