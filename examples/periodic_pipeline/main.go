// Periodic camera-style pipelines on the scheduling service: boots the
// HTTP service in-process with the real-time mode on, registers a mixed
// stream set — a fast camera loop, a slower lidar stream with a tight
// deadline, and a lazy bulk re-plan — over POST /v1/periodic, shows the
// schedulability test refusing an over-utilized stream, then lets the
// EDF dispatcher release jobs for a while and prints the per-stream
// release/miss accounting. The same behaviour is `respect-serve -rt`
// over the network.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"respect"
	"respect/internal/serve"
)

// register POSTs one periodic stream and returns the HTTP status plus
// the decoded body.
func register(base string, body map[string]any) (int, map[string]any, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(base+"/v1/periodic", "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

func main() {
	log.SetFlags(0)

	cfg := respect.ServeConfig{
		WarmModels: []string{"MobileNet", "ResNet50"}, // pre-solve the periodic models
		RT: serve.RTConfig{
			Enabled: true,
			Policy:  "edf",
		},
	}
	srv, err := respect.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Run owns the listener and the dispatcher lifecycle — the same path
	// as cmd/respect-serve.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// A camera-style mix. Costs are pinned for the demo so admission does
	// not depend on traffic history; production registrations can omit
	// cost_ms and let the observed latency quantile feed the test.
	streams := []map[string]any{
		{"name": "camera", "model": "MobileNet", "period_ms": 50, "cost_ms": 10},
		{"name": "lidar", "model": "ResNet50", "period_ms": 150, "deadline_ms": 60, "cost_ms": 20},
		{"name": "replan", "model": "ResNet50", "period_ms": 400, "cost_ms": 40},
	}
	for _, s := range streams {
		code, body, err := register(base, s)
		if err != nil {
			log.Fatal(err)
		}
		if code != http.StatusCreated {
			log.Fatalf("register %v: HTTP %d: %v", s["name"], code, body)
		}
		fmt.Printf("admitted %-7s period=%vms  set utilization now %.3f (bound %.2f, policy %v)\n",
			s["name"], s["period_ms"], body["utilization"], body["util_bound"], body["policy"])
	}

	// One stream too many: utilization would cross the EDF bound of 1.0,
	// so the schedulability test refuses it and the admitted set keeps
	// its guarantees.
	code, body, err := register(base, map[string]any{
		"name": "greedy", "model": "ResNet50", "period_ms": 20, "cost_ms": 15,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy 0.75-utilization stream: HTTP %d (%v)\n", code, body["error"])

	// Let the dispatcher release jobs for a while.
	fmt.Println("\ndispatching for 1.2s under EDF ...")
	time.Sleep(1200 * time.Millisecond)

	if rt := srv.Stats().RT; rt != nil {
		fmt.Printf("policy=%s utilization=%.3f released=%d completed=%d missed=%d\n",
			rt.Policy, rt.Utilization, rt.Releases, rt.Completions, rt.Misses)
		for _, s := range rt.Streams {
			fmt.Printf("  %-7s period=%5.0fms deadline=%5.0fms releases=%3d misses=%d\n",
				s.Name, s.PeriodMS, s.DeadlineMS, s.Releases, s.Misses)
		}
	}

	// Streams unregister cleanly; their utilization is freed for others.
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/periodic/replan", nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nremoved the bulk re-plan stream: HTTP %d, utilization now %.3f\n",
		resp.StatusCode, srv.Stats().RT.Utilization)

	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}
