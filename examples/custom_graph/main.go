// Custom-graph deployment: build your own computational DAG with the
// public API, schedule it with the exact solver, repair it for hardware,
// and simulate the pipeline — the path a user takes for a model that is
// not in the zoo.
package main

import (
	"fmt"
	"log"
	"time"

	"respect"
)

func main() {
	log.SetFlags(0)

	// A two-branch detection head: shared backbone stem, one heavy
	// classification branch, one light localization branch, late fusion.
	g := respect.NewGraph("detector-head")
	mib := func(m float64) int64 { return int64(m * (1 << 20)) }

	in := g.AddNode(respect.Node{Name: "input", OutBytes: 300 * 300 * 3})
	stem := g.AddNode(respect.Node{Name: "stem_conv", ParamBytes: mib(2), OutBytes: mib(1.5), MACs: 4e8})
	b1a := g.AddNode(respect.Node{Name: "cls_conv1", ParamBytes: mib(6), OutBytes: mib(1), MACs: 9e8})
	b1b := g.AddNode(respect.Node{Name: "cls_conv2", ParamBytes: mib(9), OutBytes: mib(0.5), MACs: 7e8})
	b2a := g.AddNode(respect.Node{Name: "loc_conv1", ParamBytes: mib(3), OutBytes: mib(1), MACs: 5e8})
	b2b := g.AddNode(respect.Node{Name: "loc_conv2", ParamBytes: mib(2), OutBytes: mib(0.5), MACs: 3e8})
	fuse := g.AddNode(respect.Node{Name: "concat", OutBytes: mib(1)})
	head := g.AddNode(respect.Node{Name: "head_fc", ParamBytes: mib(4), OutBytes: 64 << 10, MACs: 2e8})

	g.AddEdge(in, stem)
	g.AddEdge(stem, b1a)
	g.AddEdge(b1a, b1b)
	g.AddEdge(stem, b2a)
	g.AddEdge(b2a, b2b)
	g.AddEdge(b1b, fuse)
	g.AddEdge(b2b, fuse)
	g.AddEdge(fuse, head)
	if err := g.Build(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: |V|=%d, %.1f MiB parameters\n",
		g.Name, g.NumNodes(), float64(g.TotalParamBytes())/(1<<20))

	for _, stages := range []int{2, 3} {
		s, cost, optimal := respect.ScheduleExact(g, stages, time.Second)
		s = respect.PostProcess(g, s)
		fmt.Printf("\n%d-stage exact schedule (proven optimal: %v): %v\n", stages, optimal, cost)
		if deployed := s.Evaluate(g); deployed != cost {
			fmt.Printf("  (hardware repair moved the deployed objective to %v)\n", deployed)
		}
		perStage := s.StageParamBytes(g)
		for k, m := range perStage {
			fmt.Printf("  stage %d (%.1f MiB):", k, float64(m)/(1<<20))
			for v := 0; v < g.NumNodes(); v++ {
				if s.Stage[v] == k {
					fmt.Printf(" %s", g.Node(v).Name)
				}
			}
			fmt.Println()
		}
		rep, err := respect.Simulate(g, s, respect.CoralHW())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  simulated: bottleneck %v, %.0f inferences/s, %.3f mJ/inference\n",
			rep.Bottleneck, rep.Throughput(), rep.EnergyPerInference*1e3)
	}
}
