package respect

import (
	"path/filepath"
	"testing"
	"time"
)

func quickAgent(t *testing.T) *Agent {
	t.Helper()
	a, err := Train(TrainConfig{Hidden: 16, NumNodes: 12, Degrees: []int{2}, Stages: 3,
		Iterations: 8, BatchSize: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestEndToEnd(t *testing.T) {
	a := quickAgent(t)
	g, err := LoadModel("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(g, s, CoralHW())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
	if _, err := MeasureInference(g, s, CoralHW()); err != nil {
		t.Fatal(err)
	}
}

func TestAgentSaveLoad(t *testing.T) {
	a := quickAgent(t)
	path := filepath.Join(t.TempDir(), "agent.gob")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadAgent(path)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := LoadModel("Xception")
	s1, err := a.Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.Stage {
		if s1.Stage[i] != s2.Stage[i] {
			t.Fatal("loaded agent schedules differently")
		}
	}
}

func TestExactVsCompilerFacade(t *testing.T) {
	g, _ := LoadModel("Xception")
	ex, cost, optimal := ScheduleExact(g, 4, 30*time.Second)
	if !optimal {
		t.Fatal("exact truncated on Xception/4")
	}
	if err := ex.Validate(g); err != nil {
		t.Fatal(err)
	}
	comp := ScheduleCompiler(g, 4)
	if err := comp.Validate(g); err != nil {
		t.Fatal(err)
	}
	if comp.Evaluate(g).PeakParamBytes < cost.PeakParamBytes {
		t.Fatal("compiler heuristic beat the proven optimum")
	}
}

func TestCompileFullFacade(t *testing.T) {
	g, _ := LoadModel("Xception")
	s, dur, err := CompileFull(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("no compile time")
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticSamplerFacade(t *testing.T) {
	gs, err := SampleSyntheticGraphs(5, 30, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 5 {
		t.Fatalf("%d graphs", len(gs))
	}
	for _, g := range gs {
		if g.NumNodes() != 30 || g.MaxInDegree() > 4 {
			t.Fatalf("bad sample: %+v", g.Stats())
		}
	}
	if _, err := SampleSyntheticGraphs(1, 0, 2, 1); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestCustomGraphFacade(t *testing.T) {
	g := NewGraph("custom")
	a := g.AddNode(Node{Name: "in"})
	b := g.AddNode(Node{Name: "conv", ParamBytes: 1 << 20, OutBytes: 1 << 16, MACs: 1 << 24})
	c := g.AddNode(Node{Name: "fc", ParamBytes: 2 << 20, OutBytes: 1000, MACs: 1 << 21})
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	s, cost, optimal := ScheduleExact(g, 2, time.Second)
	if !optimal || cost.PeakParamBytes != 2<<20 {
		t.Fatalf("exact on custom graph: %+v optimal=%v", cost, optimal)
	}
	rep, err := Simulate(g, PostProcess(g, s), CoralHW())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bottleneck <= 0 {
		t.Fatal("no bottleneck")
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := LoadAgent(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing agent accepted")
	}
}

func TestTrainWithProgress(t *testing.T) {
	calls := 0
	_, err := TrainWithProgress(TrainConfig{Hidden: 8, NumNodes: 8, Degrees: []int{2},
		Stages: 2, Iterations: 3, BatchSize: 4, Seed: 2},
		func(iter int, reward float64) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("progress called %d times", calls)
	}
}

func TestMergeGraphsFacade(t *testing.T) {
	a, _ := LoadModel("Xception")
	b, _ := LoadModel("ResNet50")
	m, err := MergeGraphs(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != a.NumNodes()+b.NumNodes() {
		t.Fatalf("merged |V| = %d", m.NumNodes())
	}
	// Jointly scheduling two models balances their combined parameters.
	s, cost, optimal := ScheduleExact(m, 4, 30*time.Second)
	if !optimal {
		t.Fatal("exact truncated on merged graph")
	}
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	total := float64(m.TotalParamBytes())
	if peak := float64(cost.PeakParamBytes); peak > total/4*1.25 {
		t.Fatalf("merged schedule poorly balanced: peak %.1f of total %.1f", peak, total)
	}
}

func TestExecutePipelineFacade(t *testing.T) {
	g, _ := LoadModel("Xception")
	s := ScheduleCompiler(g, 4)
	res, err := ExecutePipeline(g, s, CoralHW(), 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Makespan <= 0 {
		t.Fatalf("bad execution result: %+v", res)
	}
	rep, err := Simulate(g, s, CoralHW())
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Throughput / rep.Throughput()
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("executor and analytic model disagree: %.1f vs %.1f inf/s",
			res.Throughput, rep.Throughput())
	}
}
