module respect

go 1.24
