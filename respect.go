// Package respect is the public API of the RESPECT reproduction: a
// reinforcement-learning scheduler for DNN computational graphs on
// pipelined Coral Edge TPUs (Yin et al., DAC 2023), together with every
// substrate the paper's evaluation depends on — a model zoo with the
// twelve ImageNet computational graphs, a synthetic-DAG training sampler,
// exact (branch-and-bound and ILP) and heuristic baselines, an Edge TPU
// pipeline simulator, and a deployment flow (quantization, sub-model
// images).
//
// Quick start:
//
//	g, _ := respect.LoadModel("ResNet152")
//	agent, _ := respect.Train(respect.TrainConfig{Iterations: 300})
//	s, _ := agent.Schedule(g, 6)
//	rep, _ := respect.Simulate(g, s, respect.CoralHW())
//	fmt.Println(rep.Throughput(), "inferences/s")
//
// The internal packages remain importable within this module for
// fine-grained control; this package re-exports the surface a downstream
// scheduler user needs.
package respect

import (
	"context"
	"fmt"
	"net"
	"time"

	"respect/internal/compiler"
	"respect/internal/embed"
	"respect/internal/exact"
	"respect/internal/graph"
	"respect/internal/models"
	"respect/internal/pipeline"
	"respect/internal/ptrnet"
	"respect/internal/rl"
	"respect/internal/sched"
	"respect/internal/serve"
	"respect/internal/solver"
	"respect/internal/synth"
	"respect/internal/tpu"
)

// Core graph and scheduling types.
type (
	// Graph is a DNN computational DAG.
	Graph = graph.Graph
	// Node is one operator in a Graph.
	Node = graph.Node
	// Stats is the (|V|, deg, depth) triple of Table I.
	Stats = graph.Stats
	// Schedule assigns nodes to pipeline stages.
	Schedule = sched.Schedule
	// Cost is the (peak parameter memory, cross-stage traffic) objective.
	Cost = sched.Cost
	// HW describes the Edge TPU pipeline platform.
	HW = tpu.HW
	// SimReport is a pipeline simulation outcome.
	SimReport = tpu.Report
	// TrainConfig configures RL training (see rl.Config for every knob).
	TrainConfig = rl.Config
)

// NewGraph returns an empty graph to build with AddNode/AddEdge/Build.
func NewGraph(name string) *Graph { return graph.New(name) }

// LoadModel constructs one of the twelve evaluated ImageNet computational
// graphs by name (e.g. "ResNet152", "InceptionResNetv2").
func LoadModel(name string) (*Graph, error) { return models.Load(name) }

// ModelNames lists the available model-zoo entries.
func ModelNames() []string { return models.Names() }

// MergeGraphs builds the disjoint union of several computational graphs
// so that co-deployed models can be scheduled jointly onto one pipeline
// (the paper's multi-model input mode).
func MergeGraphs(gs ...*Graph) (*Graph, error) { return graph.Merge(gs...) }

// SampleSyntheticGraphs draws n random training-style DAGs (|V| = numNodes,
// max in-degree maxDegree), as used for RESPECT's data-independent
// training.
func SampleSyntheticGraphs(n, numNodes, maxDegree int, seed int64) ([]*Graph, error) {
	cfg := synth.DefaultConfig(maxDegree)
	cfg.NumNodes = numNodes
	s, err := synth.NewSampler(cfg, seed)
	if err != nil {
		return nil, err
	}
	return s.SampleBatch(n), nil
}

// Agent is a trained RESPECT scheduler.
type Agent struct {
	model *ptrnet.Model
	ecfg  embed.Config
}

// Train trains a RESPECT agent from scratch on synthetic graphs. Zero
// config fields take scaled-down defaults that train in seconds on a CPU;
// the paper-scale setup (hidden 256, 1M graphs, batch 128) is reachable by
// setting the fields explicitly.
func Train(cfg TrainConfig) (*Agent, error) {
	tr, err := rl.NewTrainer(cfg)
	if err != nil {
		return nil, err
	}
	if err := tr.Train(nil); err != nil {
		return nil, err
	}
	return &Agent{model: tr.Model, ecfg: tr.EmbedCfg}, nil
}

// TrainWithProgress is Train with a per-iteration callback
// (iteration, mean sampled reward).
func TrainWithProgress(cfg TrainConfig, progress func(iter int, meanReward float64)) (*Agent, error) {
	tr, err := rl.NewTrainer(cfg)
	if err != nil {
		return nil, err
	}
	err = tr.Train(func(st rl.IterStats) {
		if progress != nil {
			progress(st.Iter, st.MeanReward)
		}
	})
	if err != nil {
		return nil, err
	}
	return &Agent{model: tr.Model, ecfg: tr.EmbedCfg}, nil
}

// Schedule runs RESPECT inference on g for an n-stage pipeline: embedding,
// greedy pointer decode, ρ stage mapping and the deterministic
// post-inference repair. The result is deployment-ready.
func (a *Agent) Schedule(g *Graph, numStages int) (Schedule, error) {
	return rl.Schedule(a.model, a.ecfg, g, numStages)
}

// ScheduleSampled draws samples stochastic decodes besides the greedy one
// and returns the best schedule by deployed objective — a solve-time /
// quality knob between greedy inference and exact search.
func (a *Agent) ScheduleSampled(g *Graph, numStages, samples int, seed int64) (Schedule, error) {
	return rl.ScheduleSampled(a.model, a.ecfg, g, numStages, samples, seed)
}

// Save writes the agent's weights to path.
func (a *Agent) Save(path string) error { return a.model.SaveFile(path) }

// LoadAgent reads an agent previously written with Save.
func LoadAgent(path string) (*Agent, error) {
	m, err := ptrnet.LoadFile(path)
	if err != nil {
		return nil, err
	}
	ecfg := embed.Default()
	if m.Cfg.InputDim != ecfg.Dim() {
		return nil, fmt.Errorf("respect: model input width %d does not match the default embedding (%d)", m.Cfg.InputDim, ecfg.Dim())
	}
	return &Agent{model: m, ecfg: ecfg}, nil
}

// ScheduleExact computes the provably optimal (peak parameter memory)
// schedule with the branch-and-bound exact solver. optimal reports whether
// the search completed within timeout. It is a thin wrapper over
// ScheduleExactCtx with a timeout-derived context.
func ScheduleExact(g *Graph, numStages int, timeout time.Duration) (s Schedule, cost Cost, optimal bool) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return ScheduleExactCtx(ctx, g, numStages)
}

// ScheduleExactCtx is the exact solver under a context: cancellation or an
// expired deadline truncates the search and returns the best incumbent
// (optimal false), so the caller always gets a valid schedule.
func ScheduleExactCtx(ctx context.Context, g *Graph, numStages int) (s Schedule, cost Cost, optimal bool) {
	res := exact.SolveCtx(ctx, g, numStages, exact.Options{MaxStates: 200_000_000})
	return res.Schedule, res.Cost, res.Optimal
}

// ScheduleCompiler returns the Edge TPU compiler baseline's partition
// (parameter-balanced greedy, hardware-repaired) — a thin wrapper over the
// registry's "compiler" backend.
func ScheduleCompiler(g *Graph, numStages int) Schedule {
	s, err := ScheduleWith(context.Background(), "compiler", g, numStages)
	if err != nil {
		// The compiler heuristic cannot fail on a built graph with an
		// un-cancelled context.
		panic("respect: compiler backend: " + err.Error())
	}
	return s
}

// CompileFull runs the complete compiler-emulation flow (quantization,
// partition, tiling, allocation, serialization) and returns its schedule
// and measured compile time.
func CompileFull(g *Graph, numStages int) (Schedule, time.Duration, error) {
	res, err := compiler.Compile(g, numStages, compiler.DefaultOptions())
	if err != nil {
		return Schedule{}, 0, err
	}
	return res.Schedule, res.CompileTime, nil
}

// PostProcess applies the paper's deterministic deployment repair
// (dependency push-forward + children-same-stage unification) to any
// schedule.
func PostProcess(g *Graph, s Schedule) Schedule { return sched.PostProcess(g, s) }

// CoralHW returns the default Coral Edge TPU pipeline platform model.
func CoralHW() HW { return tpu.Coral() }

// Simulate runs the pipelined Edge TPU simulator for one inference
// stream; the schedule must be deployment-ready (see PostProcess).
func Simulate(g *Graph, s Schedule, hw HW) (SimReport, error) {
	return tpu.Simulate(g, s, hw)
}

// MeasureInference mirrors the paper's protocol (10 rounds × 1000
// inferences), returning the mean per-inference latency.
func MeasureInference(g *Graph, s Schedule, hw HW) (time.Duration, error) {
	return tpu.RunBenchmark(g, s, hw, 10, 1000)
}

// ExecutionResult is the discrete-event pipeline run outcome (transient
// behaviour, queue occupancy, stage utilization).
type ExecutionResult = pipeline.Result

// ExecutePipeline runs n inferences through the deployed pipeline with the
// event-driven executor (the host runtime of the paper's Figure 2),
// exposing fill/drain transients and per-stage utilization that the
// closed-form Simulate cannot.
func ExecutePipeline(g *Graph, s Schedule, hw HW, n, queueDepth int) (*ExecutionResult, error) {
	return pipeline.Run(g, s, hw, pipeline.Config{Inferences: n, QueueDepth: queueDepth})
}

// ScheduleBeam decodes with beam search of the given width and returns
// the deployed schedule of the most likely emitted order.
func (a *Agent) ScheduleBeam(g *Graph, numStages, width int) (Schedule, error) {
	return rl.ScheduleBeam(a.model, a.ecfg, g, numStages, width)
}

// CoralPCIeHW returns the M.2/PCIe Coral platform variant (faster fabric).
func CoralPCIeHW() HW { return tpu.CoralPCIe() }

// DevBoardHW returns the Coral Dev Board platform variant.
func DevBoardHW() HW { return tpu.DevBoard() }

// ---- Scheduler backends and concurrent engines ----

// Backend is a named, context-aware scheduler (see internal/solver): any
// value implementing it can be registered and then raced in portfolios or
// fanned out over batches alongside the built-in backends.
type Backend = solver.Scheduler

// BackendOutcome is per-backend portfolio telemetry.
type BackendOutcome = solver.Outcome

// PortfolioResult is the aggregate outcome of SchedulePortfolio.
type PortfolioResult = solver.PortfolioResult

// BatchResult is one graph's outcome within ScheduleBatch.
type BatchResult = solver.BatchResult

// NewBackend wraps fn as a registrable Backend.
func NewBackend(name string, fn func(ctx context.Context, g *Graph, numStages int) (Schedule, error)) Backend {
	return solver.NewFunc(name, fn)
}

// Backends lists every registered scheduler backend, sorted. The built-in
// set (exact, exact-ilp-grade, ilp, heur, dp, compiler, compiler-full, hu,
// list, force, anneal) is always present; RL backends appear once an
// Agent registers them.
func Backends() []string { return solver.Names() }

// RegisterBackend adds a custom backend to the registry; names must be
// unique.
func RegisterBackend(b Backend) error { return solver.Register(b) }

// LookupBackend resolves a registered backend by name.
func LookupBackend(name string) (Backend, error) { return solver.Lookup(name) }

// Backend returns the agent's greedy-decode scheduler ("rl").
func (a *Agent) Backend() Backend { return solver.RL(a.model, a.ecfg) }

// SampledBackend returns the agent's best-of-K stochastic decoder
// ("rl-sampled").
func (a *Agent) SampledBackend(samples int, seed int64) Backend {
	return solver.RLSampled(a.model, a.ecfg, samples, seed)
}

// BeamBackend returns the agent's beam-search decoder ("rl-beam").
func (a *Agent) BeamBackend(width int) Backend { return solver.RLBeam(a.model, a.ecfg, width) }

// RegisterBackends publishes the agent's three decode modes ("rl",
// "rl-sampled", "rl-beam", with default inference knobs) in the backend
// registry, overwriting any previously registered agent, and resets the
// schedule cache so stale results from the previous agent cannot surface.
func (a *Agent) RegisterBackends() error {
	for _, b := range solver.AgentBackends(a.model, a.ecfg) {
		if err := solver.Replace(b); err != nil {
			return err
		}
	}
	ResetScheduleCache()
	return nil
}

// SchedulePortfolio races the named backends on one graph under ctx and
// returns the cheapest deployable schedule with per-backend telemetry.
// Anytime backends (exact, ilp) return their incumbents when the context
// deadline fires, so the call completes within the caller's budget; losing
// backends are cancelled, and no goroutine outlives the call.
func SchedulePortfolio(ctx context.Context, g *Graph, numStages int, backendNames ...string) (PortfolioResult, error) {
	backends, err := solver.Resolve(backendNames...)
	if err != nil {
		return PortfolioResult{}, err
	}
	return solver.Portfolio(ctx, backends, g, numStages)
}

// ScheduleBatch schedules many graphs with one named backend through a
// bounded pool of jobs workers. Results are in input order for any jobs
// value. Schedules are memoized by graph fingerprint: structurally
// repeated graphs (multi-model serving, sweeps) hit an O(1) cache, with
// per-item hits reported in BatchResult.CacheHit.
func ScheduleBatch(ctx context.Context, graphs []*Graph, numStages int, backendName string, jobs int) ([]BatchResult, error) {
	b, err := cachedBackend(backendName)
	if err != nil {
		return nil, err
	}
	return solver.Batch(ctx, b, graphs, numStages, jobs)
}

// ScheduleWith runs one named backend on one graph, through the same
// schedule cache as ScheduleBatch.
func ScheduleWith(ctx context.Context, backendName string, g *Graph, numStages int) (Schedule, error) {
	b, err := cachedBackend(backendName)
	if err != nil {
		return Schedule{}, err
	}
	return b.Schedule(ctx, g, numStages)
}

// scheduleCaches holds one fingerprint-keyed LRU per backend name. The
// inner scheduler is resolved from the registry at call time, so replacing
// a backend (agent reload) takes effect immediately.
var scheduleCaches = solver.NewCacheSet(solver.Default(), 256)

func cachedBackend(name string) (*solver.Cached, error) {
	return scheduleCaches.For(name)
}

// ScheduleCacheStats reports cumulative schedule-cache hits and misses for
// one backend name.
func ScheduleCacheStats(backendName string) (hits, misses uint64) {
	return scheduleCaches.Stats(backendName)
}

// ResetScheduleCache drops every cached schedule (all backends).
func ResetScheduleCache() { scheduleCaches.Reset() }

// ---- Scheduling service ----

// Serving types (see internal/serve for the full API): a Server exposes
// POST /v1/schedule, POST /v1/batch, GET /v1/backends and GET /v1/stats,
// with per-request-class latency budgets and admission control.
type (
	// ServeConfig configures the scheduling service.
	ServeConfig = serve.Config
	// ServeClass names a request service class.
	ServeClass = serve.Class
	// ServeClassPolicy is one class's budget / portfolio / admission policy.
	ServeClassPolicy = serve.ClassPolicy
	// Server is the HTTP scheduling service (an http.Handler).
	Server = serve.Server
	// ServerStats is a point-in-time service telemetry snapshot.
	ServerStats = serve.Stats
)

// Default request classes of the scheduling service.
const (
	ServeInteractive = serve.ClassInteractive
	ServeBatchClass  = serve.ClassBatch
	ServeBestEffort  = serve.ClassBestEffort
)

// NewServer builds the HTTP scheduling service. Mount it on any mux or
// http.Server; call WarmUp to pre-schedule the model zoo into the caches.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// Serve runs the scheduling service on addr until ctx is cancelled, then
// shuts down gracefully (in-flight requests drain, the concurrent
// model-zoo warm-up is stopped and awaited). For a custom lifecycle
// (picking the bound port, readiness probes) use NewServer with your own
// listener and Server.Run, as cmd/respect-serve does.
func Serve(ctx context.Context, addr string, cfg ServeConfig) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return srv.Run(ctx, ln)
}
