// Command respect-lint runs the repo's zero-dependency invariant
// analyzer suite (internal/analysis) over the module: repo-aware
// static passes that enforce the concurrency and observability
// invariants earlier PRs established by hand (cancellation reaching
// solver loops, all-atomic field access, sleep-free tests, paired and
// reset sync.Pool scratch, once-only metric registration).
//
// Usage:
//
//	respect-lint [-list] [-passes p1,p2] [./... | dir ...]
//
// Diagnostics print as file:line:col: pass: message, and any finding
// makes the exit status non-zero, so CI can gate on it. Per-line
// suppressions use //lint:ignore <pass> <reason> — the reason is
// mandatory. See docs/development.md for the pass catalogue.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"respect/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses flags, loads the requested
// packages, runs the selected passes, prints diagnostics to out, and
// returns the process exit code.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("respect-lint", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "list registered passes and exit")
	passNames := fs.String("passes", "", "comma-separated subset of passes to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, p := range analysis.Passes() {
			fmt.Fprintf(out, "%-12s %s\n", p.Name, p.Doc)
		}
		return 0
	}

	passes := analysis.Passes()
	if *passNames != "" {
		passes = passes[:0]
		for _, name := range strings.Split(*passNames, ",") {
			p := analysis.PassByName(strings.TrimSpace(name))
			if p == nil {
				fmt.Fprintf(errw, "respect-lint: unknown pass %q (try -list)\n", name)
				return 2
			}
			passes = append(passes, p)
		}
	}

	root, err := findModuleRoot(".")
	if err != nil {
		fmt.Fprintf(errw, "respect-lint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(errw, "respect-lint: %v\n", err)
		return 2
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	var units []*analysis.Unit
	for _, t := range targets {
		var us []*analysis.Unit
		var err error
		if t == "./..." || t == "..." {
			us, err = loader.LoadModule()
		} else {
			us, err = loader.LoadDir(strings.TrimSuffix(t, "/"))
		}
		if err != nil {
			fmt.Fprintf(errw, "respect-lint: %v\n", err)
			return 2
		}
		units = append(units, us...)
	}

	diags := analysis.Run(units, passes)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Pass, d.Msg)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errw, "respect-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
