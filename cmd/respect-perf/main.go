// Command respect-perf runs the benchmark trajectory harness: solver
// latency over the model zoo and synthetic graph sizes, allocation
// profiles of the tracked hot paths, and a fixed-SLO serving-throughput
// replay against an in-process scheduling server. The result is a
// schema-stable JSON artifact (BENCH_<n>.json) that successive PRs check
// in, so the repo carries its own performance history.
//
// Examples:
//
//	respect-perf -out BENCH_7.json
//	respect-perf -out BENCH_7.json -compare BENCH_6.json -threshold 0.15
//	respect-perf -short -out /tmp/quick.json        # CI regression gate
//	respect-perf -in BENCH_7.json -compare BENCH_6.json  # gate two existing artifacts
//	respect-perf -backends heur,compiler -stages 6
//
// With -compare, the process exits 1 when any tracked metric regressed
// past -threshold — the CI bench-regression job is exactly this call.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"respect/internal/perf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("respect-perf: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	os.Exit(code)
}

// errRegression marks the compare gate tripping: not a harness failure,
// but a non-zero exit.
var errRegression = errors.New("regression")

func splitNames(list string) []string {
	var out []string
	for _, p := range strings.Split(list, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(list string) ([]int, error) {
	var out []int
	for _, p := range splitNames(list) {
		v, err := strconv.Atoi(p)
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad synthetic size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// run is the binary behind injectable args and stdout; it returns the
// process exit code so tests can assert the regression gate.
func run(ctx context.Context, args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("respect-perf", flag.ContinueOnError)
	var (
		outPath   = fs.String("out", "", "write the trajectory report JSON here (empty prints a summary only)")
		label     = fs.String("label", "", "report label (defaults to the -out file name without extension)")
		compare   = fs.String("compare", "", "previous BENCH_*.json to diff against")
		inPath    = fs.String("in", "", "load the current report from this BENCH_*.json instead of measuring (compare-only; requires -compare)")
		threshold = fs.Float64("threshold", 0.15, "regression gate: fail when a metric is more than this fraction worse")
		short     = fs.Bool("short", false, "reduced iteration counts for CI (fixed, still deterministic in coverage)")
		backends  = fs.String("backends", strings.Join(perf.DefaultBackends(), ","), "comma-separated solver backends to sweep")
		modelsFl  = fs.String("models", strings.Join(perf.DefaultModels(), ","), "comma-separated zoo models to sweep")
		synthFl   = fs.String("synth", "", "comma-separated synthetic graph sizes (empty = the default sweep, \"none\" = skip)")
		stages    = fs.Int("stages", 4, "pipeline stages for every solve")
		iters     = fs.Int("iters", 0, "per-cell iterations (0 = 50, or 10 with -short)")
		servReqs  = fs.Int("serving-requests", 0, "serving replay request count (0 = 2000, or 400 with -short)")
		servWork  = fs.Int("serving-workers", 8, "serving replay closed-loop workers")
		slo       = fs.Duration("slo", 50*time.Millisecond, "serving replay p99 SLO")
		noAllocs  = fs.Bool("skip-allocs", false, "skip the testing.Benchmark allocation probes")
		noServe   = fs.Bool("skip-serving", false, "skip the serving replay")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, nil
		}
		return 2, err
	}

	// Compare-only mode: no measurement at all, just the gate between two
	// existing artifacts — this is how CI canaries with known report pairs
	// exercise the comparator itself.
	if *inPath != "" {
		if *compare == "" {
			return 2, errors.New("-in requires -compare: a loaded report alone has nothing to gate against")
		}
		cur, err := perf.ReadReport(*inPath)
		if err != nil {
			return 1, err
		}
		return compareAgainst(out, cur, *compare, *threshold)
	}

	suite := perf.SuiteConfig{
		Backends: splitNames(*backends),
		Models:   splitNames(*modelsFl),
		Stages:   *stages,
		Iters:    *iters,
	}
	switch *synthFl {
	case "":
		suite.SynthSizes = perf.DefaultSynthSizes()
	case "none":
		suite.SynthSizes = []int{}
	default:
		sizes, err := splitInts(*synthFl)
		if err != nil {
			return 2, err
		}
		suite.SynthSizes = sizes
	}
	if *short && suite.Iters == 0 {
		suite.Iters = 10
	}
	reqs := *servReqs
	if reqs == 0 {
		reqs = 2000
		if *short {
			reqs = 400
		}
	}

	name := *label
	if name == "" && *outPath != "" {
		base := *outPath
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		name = strings.TrimSuffix(base, ".json")
	}
	if name == "" {
		name = "BENCH"
	}
	report := perf.NewReport(name)
	report.CreatedAt = time.Now().UTC().Format(time.RFC3339)

	fmt.Fprintf(out, "solver sweep: %d backends x (%d models + %d synthetic sizes), %d stages\n",
		len(suite.Backends), len(suite.Models), len(suite.SynthSizes), *stages)
	solverResults, notes, err := perf.RunSolverSuite(ctx, suite)
	if err != nil {
		return 1, err
	}
	report.Solver = solverResults
	report.Notes = notes
	for _, r := range solverResults {
		fmt.Fprintf(out, "  %-14s %-18s p50=%8.1fus p99=%8.1fus %9.1f graphs/s/core\n",
			r.Backend, r.Graph, r.P50Micros, r.P99Micros, r.GraphsPerSecCore)
	}
	for _, n := range notes {
		fmt.Fprintf(out, "  note: %s\n", n)
	}

	if !*noAllocs {
		fmt.Fprintln(out, "allocation probes (testing.Benchmark):")
		report.Alloc = perf.MeasureAllocs()
		for _, a := range report.Alloc {
			fmt.Fprintf(out, "  %-18s %8d ns/op %8d B/op %6d allocs/op\n",
				a.Name, a.NsPerOp, a.BytesPerOp, a.AllocsPerOp)
		}
	}

	if !*noServe {
		fmt.Fprintf(out, "serving replay: %d requests, %d workers, SLO %v\n", reqs, *servWork, *slo)
		sres, err := perf.ServingReplay(ctx, perf.ServingConfig{
			Models:   suite.Models,
			Stages:   *stages,
			Workers:  *servWork,
			Requests: reqs,
			SLO:      *slo,
			Warm:     true,
		})
		if err != nil {
			return 1, err
		}
		report.Serving = []perf.ServingResult{sres}
		fmt.Fprintf(out, "  %-12s %9.1f req/s  p50=%8.1fus p99=%8.1fus withinSLO=%v rejected=%d\n",
			sres.Class, sres.ThroughputRPS, sres.P50Micros, sres.P99Micros, sres.WithinSLO, sres.Rejected)
	}

	if *outPath != "" {
		if err := report.WriteJSON(*outPath); err != nil {
			return 1, err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}

	if *compare != "" {
		return compareAgainst(out, report, *compare, *threshold)
	}
	return 0, nil
}

// compareAgainst runs the regression gate: diff report against the
// baseline at prevPath and exit 1 when anything regressed past
// threshold.
func compareAgainst(out io.Writer, report *perf.Report, prevPath string, threshold float64) (int, error) {
	prev, err := perf.ReadReport(prevPath)
	if err != nil {
		return 1, err
	}
	regs := perf.Compare(prev, report, threshold)
	if len(regs) == 0 {
		fmt.Fprintf(out, "no regressions vs %s (threshold %.0f%%)\n", prevPath, threshold*100)
		return 0, nil
	}
	fmt.Fprintf(out, "REGRESSIONS vs %s (threshold %.0f%%):\n", prevPath, threshold*100)
	for _, r := range regs {
		fmt.Fprintf(out, "  %s\n", r)
	}
	return 1, nil
}
