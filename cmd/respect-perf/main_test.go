package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"respect/internal/perf"
)

// quickArgs is the smallest full pass through the harness: tiny iteration
// counts, no testing.Benchmark probes (they insist on ~1s each).
func quickArgs(outPath string) []string {
	return []string{
		"-out", outPath,
		"-backends", "heur",
		"-models", "MobileNet",
		"-synth", "20",
		"-iters", "3",
		"-serving-requests", "50",
		"-serving-workers", "2",
		"-skip-allocs",
	}
}

func TestRunWritesReportAndComparesClean(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "bench.json")
	var buf strings.Builder
	code, err := run(context.Background(), quickArgs(outPath), &buf)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v\n%s", code, err, buf.String())
	}
	r, err := perf.ReadReport(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if r.Label != "bench" || len(r.Solver) != 2 || len(r.Serving) != 1 {
		t.Fatalf("unexpected report: label=%q solver=%d serving=%d", r.Label, len(r.Solver), len(r.Serving))
	}

	// Self-compare at a generous threshold passes: same machine, same
	// cells, back-to-back runs.
	buf.Reset()
	args := append(quickArgs(filepath.Join(dir, "bench2.json")), "-compare", outPath, "-threshold", "5.0")
	code, err = run(context.Background(), args, &buf)
	if err != nil || code != 0 {
		t.Fatalf("compare run: code=%d err=%v\n%s", code, err, buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Fatalf("missing clean-compare line:\n%s", buf.String())
	}
}

func TestRunFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "bench.json")
	var buf strings.Builder
	code, err := run(context.Background(), quickArgs(outPath), &buf)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	// Doctor the baseline to claim implausibly fast solves; the fresh run
	// must then trip the gate and exit non-zero.
	r, err := perf.ReadReport(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Solver {
		r.Solver[i].P50Micros /= 1000
		r.Solver[i].GraphsPerSecCore *= 1000
	}
	fast := filepath.Join(dir, "fast.json")
	if err := r.WriteJSON(fast); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	args := append(quickArgs(filepath.Join(dir, "bench2.json")), "-compare", fast)
	code, err = run(context.Background(), args, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(buf.String(), "REGRESSIONS") {
		t.Fatalf("gate did not trip: code=%d\n%s", code, buf.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf strings.Builder
	if code, _ := run(context.Background(), []string{"-not-a-flag"}, &buf); code != 2 {
		t.Fatalf("bad flag: code=%d", code)
	}
	if code, _ := run(context.Background(), []string{"-synth", "abc"}, &buf); code != 2 {
		t.Fatalf("bad synth list: code=%d", code)
	}
	if code, err := run(context.Background(), []string{"-backends", "nope", "-skip-allocs", "-skip-serving", "-synth", "none", "-models", "MobileNet", "-iters", "1"}, &buf); code == 0 || err == nil {
		t.Fatalf("unknown backend: code=%d err=%v", code, err)
	}
}
