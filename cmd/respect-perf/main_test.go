package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"respect/internal/perf"
)

// quickArgs is the smallest full pass through the harness: tiny iteration
// counts, no testing.Benchmark probes (they insist on ~1s each).
func quickArgs(outPath string) []string {
	return []string{
		"-out", outPath,
		"-backends", "heur",
		"-models", "MobileNet",
		"-synth", "20",
		"-iters", "3",
		"-serving-requests", "50",
		"-serving-workers", "2",
		"-skip-allocs",
	}
}

func TestRunWritesReportAndComparesClean(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "bench.json")
	var buf strings.Builder
	code, err := run(context.Background(), quickArgs(outPath), &buf)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v\n%s", code, err, buf.String())
	}
	r, err := perf.ReadReport(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if r.Label != "bench" || len(r.Solver) != 2 || len(r.Serving) != 1 {
		t.Fatalf("unexpected report: label=%q solver=%d serving=%d", r.Label, len(r.Solver), len(r.Serving))
	}

	// Self-compare at a generous threshold passes: same machine, same
	// cells, back-to-back runs.
	buf.Reset()
	args := append(quickArgs(filepath.Join(dir, "bench2.json")), "-compare", outPath, "-threshold", "5.0")
	code, err = run(context.Background(), args, &buf)
	if err != nil || code != 0 {
		t.Fatalf("compare run: code=%d err=%v\n%s", code, err, buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Fatalf("missing clean-compare line:\n%s", buf.String())
	}
}

func TestRunFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "bench.json")
	var buf strings.Builder
	code, err := run(context.Background(), quickArgs(outPath), &buf)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	// Doctor the baseline to claim implausibly fast solves; the fresh run
	// must then trip the gate and exit non-zero.
	r, err := perf.ReadReport(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Solver {
		r.Solver[i].P50Micros /= 1000
		r.Solver[i].GraphsPerSecCore *= 1000
	}
	fast := filepath.Join(dir, "fast.json")
	if err := r.WriteJSON(fast); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	args := append(quickArgs(filepath.Join(dir, "bench2.json")), "-compare", fast)
	code, err = run(context.Background(), args, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(buf.String(), "REGRESSIONS") {
		t.Fatalf("gate did not trip: code=%d\n%s", code, buf.String())
	}
}

// TestRunCompareOnlyZeroBaselineAllocGate is the CI canary in miniature:
// with -in, nothing is measured — the gate diffs two existing artifacts,
// and a 0 -> N allocs/op pair must exit non-zero with an infinite ratio,
// the exact blind spot the old comparator had.
func TestRunCompareOnlyZeroBaselineAllocGate(t *testing.T) {
	dir := t.TempDir()
	base := perf.NewReport("BENCH_base")
	base.Alloc = []perf.AllocResult{{Name: "sched.Evaluate", AllocsPerOp: 0, BytesPerOp: 0}}
	cur := perf.NewReport("BENCH_cur")
	cur.Alloc = []perf.AllocResult{{Name: "sched.Evaluate", AllocsPerOp: 500, BytesPerOp: 4096}}
	basePath := filepath.Join(dir, "base.json")
	curPath := filepath.Join(dir, "cur.json")
	if err := base.WriteJSON(basePath); err != nil {
		t.Fatal(err)
	}
	if err := cur.WriteJSON(curPath); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	code, err := run(context.Background(), []string{"-in", curPath, "-compare", basePath}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("0 -> 500 allocs/op exited %d, want 1:\n%s", code, buf.String())
	}
	for _, want := range []string{"REGRESSIONS", "alloc.allocs_per_op", "sched.Evaluate", "+Inf"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("gate output missing %q:\n%s", want, buf.String())
		}
	}

	// The reverse direction (N -> 0) is an improvement: clean exit.
	buf.Reset()
	if code, err := run(context.Background(), []string{"-in", basePath, "-compare", curPath}, &buf); err != nil || code != 0 {
		t.Fatalf("improvement gated: code=%d err=%v\n%s", code, err, buf.String())
	}

	// -in without -compare is a usage error.
	if code, err := run(context.Background(), []string{"-in", curPath}, &buf); code != 2 || err == nil {
		t.Fatalf("-in alone: code=%d err=%v", code, err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf strings.Builder
	if code, _ := run(context.Background(), []string{"-not-a-flag"}, &buf); code != 2 {
		t.Fatalf("bad flag: code=%d", code)
	}
	if code, _ := run(context.Background(), []string{"-synth", "abc"}, &buf); code != 2 {
		t.Fatalf("bad synth list: code=%d", code)
	}
	if code, err := run(context.Background(), []string{"-backends", "nope", "-skip-allocs", "-skip-serving", "-synth", "none", "-models", "MobileNet", "-iters", "1"}, &buf); code == 0 || err == nil {
		t.Fatalf("unknown backend: code=%d err=%v", code, err)
	}
}
