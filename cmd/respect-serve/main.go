// Command respect-serve runs RESPECT's HTTP scheduling service: graph in,
// deployment-ready Edge TPU pipeline schedule out, with per-request-class
// latency budgets, admission control and a zoo-warmed schedule cache.
//
// Examples:
//
//	respect-serve -addr :8080
//	respect-serve -addr :8080 -agent respect.gob -interactive-backends heur,rl
//	respect-serve -addr 127.0.0.1:0 -warm none -batch-budget 10s
//	respect-serve -addr :8080 -speculate -speculate-watermark 0.6 -speculate-budget 8
//	respect-serve -addr :8080 -rt -rt-policy rm
//	respect-serve -addr :8080 -advertise http://10.0.0.1:8080 \
//	    -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//
//	curl -s localhost:8080/v1/schedule -d '{"model":"ResNet152","stages":6}'
//	curl -s localhost:8080/v1/periodic -d '{"name":"cam","model":"MobileNet","period_ms":100}'
//	curl -s localhost:8080/v1/backends
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"respect/internal/embed"
	"respect/internal/models"
	"respect/internal/ptrnet"
	"respect/internal/serve"
	"respect/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("respect-serve: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// splitNames splits a comma-separated list, trimming whitespace and
// dropping empty entries.
func splitNames(list string) []string {
	var out []string
	for _, p := range strings.Split(list, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseBuckets parses -metrics-buckets: comma-separated positive seconds
// ("" keeps the server defaults).
func parseBuckets(list string) ([]float64, error) {
	var out []float64
	for _, p := range splitNames(list) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("-metrics-buckets: bad bound %q: %w", p, err)
		}
		if v <= 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("-metrics-buckets: bound %v must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// run is the whole binary behind a cancellable context and an injected
// stdout, so the smoke tests can drive startup and shutdown in-process.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("respect-serve", flag.ContinueOnError)
	// Per-class flag defaults come from serve.DefaultClasses so the
	// policy table has one source of truth.
	defaults := serve.DefaultClasses()
	di, db, de := defaults[serve.ClassInteractive], defaults[serve.ClassBatch], defaults[serve.ClassBestEffort]
	var (
		addr        = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		stages      = fs.Int("stages", 4, "default pipeline stages for requests that omit stages")
		cacheSize   = fs.Int("cache", 512, "per-class schedule cache capacity")
		warm        = fs.String("warm", "zoo", `warm-up set: "zoo" (every model), "none", or comma-separated zoo names`)
		agentPath   = fs.String("agent", "", "trained agent weights; registers the rl backends before serving")
		samples     = fs.Int("samples", 16, "stochastic decodes for the rl-sampled backend")
		beam        = fs.Int("beam", 8, "beam width for the rl-beam backend")
		interBudget = fs.Duration("interactive-budget", di.Budget, "interactive class latency budget")
		batchBudget = fs.Duration("batch-budget", db.Budget, "batch class latency budget")
		beBudget    = fs.Duration("best-effort-budget", de.Budget, "best-effort class latency budget")
		interBack   = fs.String("interactive-backends", "", "override the interactive portfolio (comma-separated backend names)")
		batchBack   = fs.String("batch-backends", "", "override the batch portfolio")
		beBack      = fs.String("best-effort-backends", "", "override the best-effort portfolio")
		interConc   = fs.Int("interactive-concurrency", di.MaxConcurrent, "interactive class concurrent-request limit")
		batchConc   = fs.Int("batch-concurrency", db.MaxConcurrent, "batch class concurrent-request limit")
		beConc      = fs.Int("best-effort-concurrency", de.MaxConcurrent, "best-effort class concurrent-request limit")
		queueDepth  = fs.Int("queue-depth", 0, "override every class's admission queue depth (0 keeps per-class defaults)")
		metricsOn   = fs.Bool("metrics", true, "serve Prometheus metrics on GET /metrics")
		buckets     = fs.String("metrics-buckets", "", "latency histogram bucket bounds in seconds, comma-separated (empty keeps the defaults, 5ms..10s)")
		speculateOn = fs.Bool("speculate", false, "speculatively warm the per-class caches from popularity + eviction signals")
		specMark    = fs.Float64("speculate-watermark", 0, "admission occupancy in (0,1] at which speculation yields (0 keeps the default, 0.5)")
		specBudget  = fs.Int("speculate-budget", 0, "max speculative solves per scan pass (0 keeps the default, 4)")
		peersList   = fs.String("peers", "", "comma-separated replica URLs; enables fleet mode (consistent-hash sharding, request forwarding, popularity gossip)")
		advertise   = fs.String("advertise", "", "this replica's URL as its peers reach it (required with -peers)")
		noGossip    = fs.Bool("no-gossip", false, "in fleet mode, disable the popularity gossip exchange (sharding and forwarding stay on)")
		onlineOn    = fs.Bool("online", false, "enable the online learning loop: solved requests feed per-class replay buffers, background rounds train candidates, shadow-evaluated winners hot-reload into the class portfolios")
		onlineIvl   = fs.Duration("online-interval", 0, "online training-round period (0 keeps the default, 30s)")
		onlineMgn   = fs.Float64("online-margin", 0, "relative held-out improvement a candidate must show to be promoted (0 keeps the default, 0.02)")
		onlineBuf   = fs.Int("online-buffer", 0, "per-class replay-buffer capacity (0 keeps the default, 4096)")
		rtOn        = fs.Bool("rt", false, "enable the periodic-task mode: register (model, period, deadline) streams on POST /v1/periodic")
		rtPolicy    = fs.String("rt-policy", "edf", `periodic queue discipline: "fifo", "rm" or "edf"`)
		rtUtilBound = fs.Float64("rt-util-bound", 0, "override the schedulability utilization bound (0 keeps the policy default and the response-time analysis)")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables profiling")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; that is success, not a failure
		}
		return err
	}

	var agent *ptrnet.Model
	if *agentPath != "" {
		m, err := ptrnet.LoadFile(*agentPath)
		if err != nil {
			return err
		}
		agent = m
		ecfg := embed.Default()
		for _, b := range []solver.Scheduler{
			solver.RL(m, ecfg),
			solver.RLSampled(m, ecfg, *samples, 1),
			solver.RLBeam(m, ecfg, *beam),
		} {
			if err := solver.Replace(b); err != nil {
				return err
			}
		}
	}

	classes := defaults
	for class, override := range map[serve.Class]struct {
		budget   time.Duration
		backends string
		conc     int
	}{
		serve.ClassInteractive: {*interBudget, *interBack, *interConc},
		serve.ClassBatch:       {*batchBudget, *batchBack, *batchConc},
		serve.ClassBestEffort:  {*beBudget, *beBack, *beConc},
	} {
		p := classes[class]
		p.Budget = override.budget
		p.MaxConcurrent = override.conc
		if override.backends != "" {
			p.Backends = splitNames(override.backends)
		}
		if *queueDepth > 0 {
			p.MaxQueue = *queueDepth
		}
		classes[class] = p
	}

	latencyBuckets, err := parseBuckets(*buckets)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Stages:         *stages,
		CacheSize:      *cacheSize,
		Classes:        classes,
		LatencyBuckets: latencyBuckets,
		DisableMetrics: !*metricsOn,
		Speculation: serve.SpeculationConfig{
			Enabled:   *speculateOn,
			Watermark: *specMark,
			Budget:    *specBudget,
		},
		RT: serve.RTConfig{
			Enabled:   *rtOn,
			Policy:    *rtPolicy,
			UtilBound: *rtUtilBound,
		},
		Online: serve.OnlineConfig{
			Enabled:   *onlineOn,
			Agent:     agent, // the -agent weights seed every class incumbent
			Interval:  *onlineIvl,
			Margin:    *onlineMgn,
			BufferCap: *onlineBuf,
		},
		Cluster: serve.ClusterConfig{
			Advertise:     *advertise,
			Peers:         splitNames(*peersList),
			DisableGossip: *noGossip,
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		},
	}
	switch *warm {
	case "zoo":
		// nil WarmModels warms the whole zoo.
	case "none":
		cfg.WarmModels = []string{}
	default:
		cfg.WarmModels = splitNames(*warm)
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "listening on http://%s (%d backends, %d zoo models)\n",
		ln.Addr(), len(solver.Names()), len(models.Names()))

	if *pprofAddr != "" {
		// The profiler gets its own listener and mux: pprof handlers must
		// never be exposed on the serving address, and the DefaultServeMux
		// registration net/http/pprof performs at import time only reaches
		// this private mux.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: mux}
		go psrv.Serve(pln)
		defer psrv.Close()
		fmt.Fprintf(out, "pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	// Run owns the listener: it warms the caches concurrently with early
	// traffic and drains in-flight requests on ctx cancellation.
	return srv.Run(ctx, ln)
}
