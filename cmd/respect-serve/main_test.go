package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe io.Writer the server under test logs to.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^\s]+)`)

// TestRunStartupShutdown drives the whole binary in-process: boot on an
// ephemeral port with warm-up disabled, serve real requests, then shut
// down cleanly via context cancellation (the signal path of main).
func TestRunStartupShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-warm", "none"}, &out)
	}()

	var base string
	deadline := time.Now().Add(15 * time.Second)
	for base == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before listening: %v\noutput: %s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listening line within 15s; output: %s", out.String())
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/schedule", "application/json",
		strings.NewReader(`{"model":"MobileNet","stages":4}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d: %s", resp.StatusCode, body)
	}
	var sched struct {
		Backend string `json:"backend"`
		Stage   []int  `json:"stage"`
	}
	if err := json.Unmarshal(body, &sched); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	if sched.Backend == "" || len(sched.Stage) == 0 {
		t.Fatalf("empty schedule response: %s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not shut down; output: %s", out.String())
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("no shutdown line in output: %s", out.String())
	}
}

// pollUntil re-checks cond every few milliseconds until it returns true
// or the timeout elapses. Every wait in this file funnels through here,
// so the one deliberately bounded sleep lives in one place.
func pollUntil(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		//lint:ignore nosleeptest deadline-bounded poll interval shared by every wait in this file
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// waitForOutput polls out until re matches, returning the first capture
// group (e.g. a listen address) or "" on timeout.
func waitForOutput(t *testing.T, out *syncBuffer, re *regexp.Regexp) string {
	t.Helper()
	var got string
	pollUntil(t, 15*time.Second, func() bool {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			got = m[1]
		}
		return got != ""
	})
	return got
}

// startServe boots run() with the given extra flags on an ephemeral port
// and returns the base URL plus the shutdown plumbing.
func startServe(t *testing.T, extra ...string) (base string, out *syncBuffer, cancel context.CancelFunc, done chan error) {
	t.Helper()
	ctx, cancelCtx := context.WithCancel(context.Background())
	out = &syncBuffer{}
	done = make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-warm", "none"}, extra...)
	go func() { done <- run(ctx, args, out) }()
	base = waitForOutput(t, out, listenRE)
	if base == "" {
		cancelCtx()
		t.Fatalf("no listening line; output: %s", out.String())
	}
	return base, out, cancelCtx, done
}

// TestRunMetricsFlags covers the observability flags: custom histogram
// buckets show up on the exposition page, and -metrics=false unmounts the
// endpoint entirely.
func TestRunMetricsFlags(t *testing.T) {
	base, _, cancel, done := startServe(t, "-metrics-buckets", "0.002,0.2")
	defer func() { cancel(); <-done }()

	resp, err := http.Post(base+"/v1/schedule", "application/json",
		strings.NewReader(`{"model":"MobileNet","stages":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d", resp.StatusCode)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", mresp.StatusCode)
	}
	for _, want := range []string{
		`le="0.002"`,
		`respect_admission_requests_total{class="interactive",result="admitted"} 1`,
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("exposition missing %q:\n%s", want, page)
		}
	}
	if strings.Contains(string(page), `le="0.005"`) {
		t.Fatalf("default buckets leaked through -metrics-buckets:\n%s", page)
	}

	// Bad bucket lists are flag errors, not panics.
	var out syncBuffer
	if err := run(context.Background(), []string{"-metrics-buckets", "abc"}, &out); err == nil {
		t.Fatal("want bucket parse error")
	}
	if err := run(context.Background(), []string{"-metrics-buckets", "-1"}, &out); err == nil {
		t.Fatal("want negative bucket error")
	}
	if err := run(context.Background(), []string{"-metrics-buckets", "NaN"}, &out); err == nil {
		t.Fatal("want NaN bucket error")
	}
}

func TestRunMetricsDisabled(t *testing.T) {
	base, _, cancel, done := startServe(t, "-metrics=false")
	defer func() { cancel(); <-done }()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("-metrics=false /metrics: %d, want 404", resp.StatusCode)
	}
}

// TestRunSpeculateFlags boots with speculation on: the speculation metric
// families are exposed, /v1/stats carries the speculation block, and bad
// speculation flag values are config errors, not panics.
func TestRunSpeculateFlags(t *testing.T) {
	base, _, cancel, done := startServe(t, "-speculate", "-speculate-watermark", "0.7", "-speculate-budget", "2")
	defer func() { cancel(); <-done }()

	resp, err := http.Post(base+"/v1/schedule", "application/json",
		strings.NewReader(`{"model":"MobileNet","stages":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d", resp.StatusCode)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"respect_speculative_warms_total",
		"respect_speculative_hits_total",
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("exposition missing %q with -speculate:\n%s", want, page)
		}
	}

	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Speculation *struct {
			TrackedKeys int `json:"tracked_keys"`
		} `json:"speculation"`
	}
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Speculation == nil || st.Speculation.TrackedKeys < 1 {
		t.Fatalf("stats speculation block missing or empty: %+v", st.Speculation)
	}

	var out syncBuffer
	if err := run(context.Background(), []string{"-speculate", "-speculate-watermark", "1.5"}, &out); err == nil {
		t.Fatal("want watermark range error")
	}
	if err := run(context.Background(), []string{"-speculate", "-speculate-budget", "-1"}, &out); err == nil {
		t.Fatal("want negative budget error")
	}
}

// TestRunRTFlags boots with the periodic-task mode on: /v1/periodic
// registers a stream under the flagged policy, the rt metric families
// are exposed, /v1/stats carries the rt block, and bad rt flag values
// are config errors, not panics.
func TestRunRTFlags(t *testing.T) {
	base, _, cancel, done := startServe(t, "-rt", "-rt-policy", "rm", "-rt-util-bound", "0.8")
	defer func() { cancel(); <-done }()

	resp, err := http.Post(base+"/v1/periodic", "application/json",
		strings.NewReader(`{"name":"cam","model":"MobileNet","period_ms":200,"cost_ms":5}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("periodic register: %d: %s", resp.StatusCode, body)
	}
	var reg struct {
		Policy    string  `json:"policy"`
		UtilBound float64 `json:"util_bound"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	if reg.Policy != "rm" || reg.UtilBound != 0.8 {
		t.Fatalf("flags not reflected in registration: %s", body)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`respect_rt_releases_total{stream="cam"}`,
		`respect_rt_deadline_misses_total{stream="cam",policy="rm"}`,
		"respect_rt_queued_jobs",
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("exposition missing %q with -rt:\n%s", want, page)
		}
	}

	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		RT *struct {
			Policy  string `json:"policy"`
			Streams []struct {
				Name string `json:"name"`
			} `json:"streams"`
		} `json:"rt"`
	}
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.RT == nil || st.RT.Policy != "rm" || len(st.RT.Streams) != 1 {
		t.Fatalf("stats rt block missing or wrong: %+v", st.RT)
	}

	var out syncBuffer
	if err := run(context.Background(), []string{"-rt", "-rt-policy", "lifo"}, &out); err == nil {
		t.Fatal("want unknown policy error")
	}
	if err := run(context.Background(), []string{"-rt", "-rt-util-bound", "-1"}, &out); err == nil {
		t.Fatal("want negative bound error")
	}
}

// TestRunClusterFlags boots a replica in fleet mode with one unreachable
// peer: the cluster endpoints and metric families come up, /v1/stats
// carries the cluster block, and bad fleet flags are config errors.
func TestRunClusterFlags(t *testing.T) {
	// Port 9 (discard) refuses connections immediately, so the dead peer
	// never slows the test down.
	base, _, cancel, done := startServe(t,
		"-advertise", "http://127.0.0.1:18080",
		"-peers", "http://127.0.0.1:18080,http://127.0.0.1:9")
	defer func() { cancel(); <-done }()

	resp, err := http.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cs struct {
		Self    string `json:"self"`
		Members []struct {
			URL   string `json:"url"`
			Self  bool   `json:"self"`
			State string `json:"state"`
		} `json:"members"`
	}
	err = json.NewDecoder(resp.Body).Decode(&cs)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Self != "http://127.0.0.1:18080" || len(cs.Members) != 2 {
		t.Fatalf("cluster stats: self %q with %d members, want advertise URL with 2", cs.Self, len(cs.Members))
	}

	hresp, err := http.Get(base + "/v1/cluster/heartbeat")
	if err != nil {
		t.Fatal(err)
	}
	var hb struct {
		From string `json:"from"`
	}
	err = json.NewDecoder(hresp.Body).Decode(&hb)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hb.From != "http://127.0.0.1:18080" {
		t.Fatalf("heartbeat from %q, want the advertise URL", hb.From)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"respect_cluster_forwards_total",
		`respect_cluster_peer_state{peer="http://127.0.0.1:9"}`,
		"respect_cluster_rebalances_total",
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("exposition missing %q in fleet mode:\n%s", want, page)
		}
	}

	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Cluster *struct {
			Self string `json:"self"`
		} `json:"cluster"`
	}
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || st.Cluster.Self != "http://127.0.0.1:18080" {
		t.Fatalf("stats cluster block missing or wrong: %+v", st.Cluster)
	}

	var out syncBuffer
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-warm", "none",
		"-peers", "http://127.0.0.1:9"}, &out); err == nil {
		t.Fatal("want missing-advertise error")
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-warm", "none",
		"-advertise", "http://127.0.0.1:18080"}, &out); err == nil {
		t.Fatal("want advertise-without-peers error")
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-warm", "none",
		"-advertise", "http://127.0.0.1:18080", "-peers", "not-a-url"}, &out); err == nil {
		t.Fatal("want bad-peer-URL error")
	}
}

// TestRunWarmSetAndFlagErrors covers the warm-set plumbing and flag
// validation without binding a real port twice.
func TestRunWarmSetAndFlagErrors(t *testing.T) {
	// Unknown warm model fails fast, before listening.
	var out syncBuffer
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-warm", "NoSuchNet"}, &out)
	if err == nil || !strings.Contains(err.Error(), "NoSuchNet") {
		t.Fatalf("want unknown-model error, got %v", err)
	}
	// Bad flag is reported by the flag set, not a panic.
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("want flag error")
	}
	// Unknown backend override fails at config validation.
	err = run(context.Background(), []string{"-addr", "127.0.0.1:0", "-warm", "none", "-interactive-backends", "nope"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("want unknown-backend error, got %v", err)
	}
}

// TestRunWarmUpCachesZooSubset boots with a two-model warm set and checks
// the first request is a cache hit once stats report the warm-up done.
func TestRunWarmUpCachesZooSubset(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-warm", "MobileNet,VGG16"}, &out)
	}()
	base := waitForOutput(t, &out, listenRE)
	if base == "" {
		t.Fatalf("no listening line; output: %s", out.String())
	}

	// Wait for the warm-up to land (it runs concurrently with serving).
	warmed := pollUntil(t, 15*time.Second, func() bool {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			WarmedSchedules int64 `json:"warmed_schedules"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return st.WarmedSchedules >= 2
	})
	if !warmed {
		t.Fatalf("warm-up never completed; output: %s", out.String())
	}

	resp, err := http.Post(base+"/v1/schedule", "application/json",
		strings.NewReader(`{"model":"MobileNet"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var schedResp struct {
		CacheHit bool `json:"cache_hit"`
	}
	if err := json.Unmarshal(body, &schedResp); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	if !schedResp.CacheHit {
		t.Fatalf("warmed model missed the cache: %s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not shut down")
	}
}

var pprofRE = regexp.MustCompile(`pprof on (http://[^\s]+)/debug/pprof/`)

// TestRunPprofFlag mounts the profiler on a second ephemeral port and
// checks the index and a heap profile respond there, while the serving
// address stays clean of /debug/pprof.
func TestRunPprofFlag(t *testing.T) {
	base, out, cancel, done := startServe(t, "-pprof", "127.0.0.1:0")
	defer func() { cancel(); <-done }()

	pbase := waitForOutput(t, out, pprofRE)
	if pbase == "" {
		t.Fatalf("no pprof line; output: %s", out.String())
	}

	resp, err := http.Get(pbase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(page), "heap") {
		t.Fatalf("pprof index: %d: %s", resp.StatusCode, page)
	}
	resp, err = http.Get(pbase + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heap profile: %d", resp.StatusCode)
	}

	// The serving mux must not expose the profiler.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("serving address exposes pprof: %d", resp.StatusCode)
	}

	// A bad profiler address is a startup error, not a panic.
	var buf syncBuffer
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-warm", "none", "-pprof", "256.0.0.1:99999"}, &buf); err == nil {
		t.Fatal("want pprof listen error")
	}
}

// TestRunOnlineFlag boots the binary with the learning loop enabled and
// checks the wiring end to end: the per-class online backends are
// registered and raced, solved requests land in the replay buffer, and
// the online stats block and metric families are exposed.
func TestRunOnlineFlag(t *testing.T) {
	base, _, cancel, done := startServe(t, "-online", "-online-interval", "1h", "-online-margin", "0.05", "-online-buffer", "128")
	defer func() { cancel(); <-done }()

	resp, err := http.Post(base+"/v1/schedule", "application/json",
		strings.NewReader(`{"model":"MobileNet","stages":4,"class":"interactive"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d", resp.StatusCode)
	}

	bresp, err := http.Get(base + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	bpage, _ := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if !strings.Contains(string(bpage), `"rl-online-interactive"`) {
		t.Fatalf("backends listing lacks the online backend:\n%s", bpage)
	}

	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Online *struct {
			Classes map[string]struct {
				Backend string `json:"backend"`
				Samples uint64 `json:"samples"`
			} `json:"classes"`
		} `json:"online"`
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatalf("decode %s: %v", sbody, err)
	}
	if st.Online == nil {
		t.Fatalf("stats online block missing:\n%s", sbody)
	}
	cs, ok := st.Online.Classes["interactive"]
	if !ok || cs.Samples != 1 || cs.Backend != "rl-online-interactive" {
		t.Fatalf("online interactive class state: %+v (body %s)", cs, sbody)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`respect_online_samples_total{class="interactive"} 1`,
		"respect_online_train_rounds_total 0",
		`respect_online_promotions_total{class="interactive",result="promoted"} 0`,
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("exposition missing %q:\n%s", want, page)
		}
	}
}
