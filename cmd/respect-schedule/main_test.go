// Smoke tests for the cmd/ binaries: every command must compile and the
// two user-facing entry points (respect-schedule, respect-serve) must
// start, answer, and exit cleanly as real processes.
package main

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// cmdNames enumerates the command directories under cmd/ so the smoke
// build can never silently drift out of sync with the tree when a new
// binary is added.
func cmdNames(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("..")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no command directories found under cmd/")
	}
	return names
}

// buildBinaries compiles every cmd package into a shared temp dir once per
// test binary.
func buildBinaries(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	names := cmdNames(t)
	args := []string{"build", "-o", dir}
	for _, name := range names {
		args = append(args, "respect/cmd/"+name)
	}
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build cmd/...: %v\n%s", err, out)
	}
	for _, name := range names {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("binary %s missing after build: %v", name, err)
		}
	}
	return dir
}

func TestScheduleListBackendsSmoke(t *testing.T) {
	dir := buildBinaries(t)
	out, err := exec.Command(filepath.Join(dir, "respect-schedule"), "-list-backends").CombinedOutput()
	if err != nil {
		t.Fatalf("respect-schedule -list-backends: %v\n%s", err, out)
	}
	for _, want := range []string{"backends:", "exact", "heur", "compiler", "models:", "ResNet152"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScheduleSolveSmoke(t *testing.T) {
	dir := buildBinaries(t)
	out, err := exec.Command(filepath.Join(dir, "respect-schedule"),
		"-model", "MobileNet", "-stages", "4", "-backend", "heur", "-sim=false").CombinedOutput()
	if err != nil {
		t.Fatalf("respect-schedule solve: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "objective:") {
		t.Fatalf("no objective in output:\n%s", out)
	}
}

// TestLintListSmoke checks the analyzer driver binary is wired to the
// full pass catalogue: -list must print every registered pass.
func TestLintListSmoke(t *testing.T) {
	dir := buildBinaries(t)
	out, err := exec.Command(filepath.Join(dir, "respect-lint"), "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("respect-lint -list: %v\n%s", err, out)
	}
	for _, pass := range []string{"atomicfield", "ctxloop", "metriconce", "nosleeptest", "poolpair"} {
		if !strings.Contains(string(out), pass) {
			t.Fatalf("respect-lint -list missing pass %q:\n%s", pass, out)
		}
	}
}

// TestServeBinaryStartupShutdown runs the real respect-serve process on an
// ephemeral port, waits for readiness, makes one request, and stops it
// with SIGTERM — the deployment lifecycle end to end.
func TestServeBinaryStartupShutdown(t *testing.T) {
	dir := buildBinaries(t)
	cmd := exec.Command(filepath.Join(dir, "respect-serve"), "-addr", "127.0.0.1:0", "-warm", "none")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // belt and braces on failure paths

	// First line announces the bound address.
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		// Drain so the child never blocks on a full pipe.
		_, _ = io.Copy(io.Discard, stdout)
	}()
	var base string
	select {
	case line := <-lineCh:
		i := strings.Index(line, "http://")
		if i < 0 {
			t.Fatalf("unexpected first line: %q", line)
		}
		base = strings.Fields(line[i:])[0]
	case <-time.After(30 * time.Second):
		t.Fatal("server never announced its address")
	}

	resp, err := http.Get(base + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "exact") {
		t.Fatalf("backends: %d %s", resp.StatusCode, body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("respect-serve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("respect-serve did not exit after SIGTERM")
	}
}
