// Command respect-schedule schedules DNN computational graphs onto an
// n-stage Edge TPU pipeline with any registered scheduler backend, a
// portfolio race of several backends, or a parallel batch over many
// graphs; it reports the memory / communication objective and simulates
// on-chip inference.
//
// Examples:
//
//	respect-schedule -model ResNet152 -stages 6 -backend exact
//	respect-schedule -model Xception -stages 4 -backend rl -agent respect.gob
//	respect-schedule -model ResNet152 -stages 6 -portfolio heur,exact,compiler -timeout 10s
//	respect-schedule -model ResNet50,Xception,DenseNet121 -stages 4 -backend heur -jobs 4
//	respect-schedule -list-backends
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"respect/internal/bench"
	"respect/internal/embed"
	"respect/internal/graph"
	"respect/internal/models"
	"respect/internal/ptrnet"
	"respect/internal/sched"
	"respect/internal/solver"
	"respect/internal/tpu"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("respect-schedule: ")

	var (
		modelNames = flag.String("model", "", "comma-separated model-zoo graphs (see -list-backends output for models)")
		graphPath  = flag.String("graph", "", "path to a graph JSON (alternative to -model)")
		stages     = flag.Int("stages", 4, "pipeline stages")
		backend    = flag.String("backend", "", "scheduler backend (see -list-backends)")
		scheduler  = flag.String("scheduler", "", "deprecated alias for -backend")
		portfolio  = flag.String("portfolio", "", "comma-separated backends to race; the cheapest schedule wins")
		jobs       = flag.Int("jobs", 1, "parallel workers when scheduling several graphs")
		agentPath  = flag.String("agent", "", "trained agent weights (enables the rl backends)")
		timeout    = flag.Duration("timeout", 60*time.Second, "scheduling deadline (context); anytime backends return incumbents")
		samples    = flag.Int("samples", 16, "stochastic decodes for the rl-sampled backend")
		beam       = flag.Int("beam", 8, "beam width for the rl-beam backend")
		dotPath    = flag.String("dot", "", "write a stage-colored Graphviz rendering here (single graph only)")
		simulate   = flag.Bool("sim", true, "simulate pipelined inference on the Coral platform model")
		listOnly   = flag.Bool("list-backends", false, "list registered backends and exit")
	)
	flag.Parse()

	if *agentPath != "" {
		m, err := ptrnet.LoadFile(*agentPath)
		if err != nil {
			log.Fatal(err)
		}
		ecfg := embed.Default()
		for _, b := range []solver.Scheduler{
			solver.RL(m, ecfg),
			solver.RLSampled(m, ecfg, *samples, 1),
			solver.RLBeam(m, ecfg, *beam),
		} {
			if err := solver.Replace(b); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *listOnly {
		fmt.Printf("backends: %s\n", strings.Join(solver.Names(), ", "))
		fmt.Printf("models:   %s\n", strings.Join(models.Names(), ", "))
		return
	}

	graphs, err := loadGraphs(*modelNames, *graphPath)
	if err != nil {
		log.Fatal(err)
	}

	name := *backend
	if name == "" {
		name = *scheduler
	}
	if name == "" && *portfolio == "" {
		name = "exact"
	}
	// Back-compat: "-scheduler rl -beam N" / "-samples K" historically
	// selected the beam/sampled decoder; map an explicit flag to the
	// matching rl backend.
	if name == "rl" {
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		switch {
		case explicit["beam"]:
			name = "rl-beam"
		case explicit["samples"]:
			name = "rl-sampled"
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch {
	case *portfolio != "" && len(graphs) == 1:
		runPortfolio(ctx, *timeout, splitNames(*portfolio), graphs[0], *stages, *simulate, *dotPath)
	case *portfolio != "":
		members, err := solver.Resolve(splitNames(*portfolio)...)
		if err != nil {
			log.Fatal(err)
		}
		runBatch(ctx, solver.PortfolioScheduler("portfolio("+*portfolio+")", solver.PortfolioOptions{}, members...), graphs, *stages, *jobs)
	case len(graphs) == 1:
		b := lookupBackend(name)
		runSingle(ctx, *timeout, b, graphs[0], *stages, *simulate, *dotPath)
	default:
		runBatch(ctx, solver.NewCached(lookupBackend(name), 256), graphs, *stages, *jobs)
	}
}

func lookupBackend(name string) solver.Scheduler {
	b, err := solver.Lookup(name)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

// splitNames splits a comma-separated list, trimming whitespace around
// each entry.
func splitNames(list string) []string {
	parts := strings.Split(list, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func loadGraphs(modelList, path string) ([]*graph.Graph, error) {
	switch {
	case modelList != "" && path != "":
		return nil, fmt.Errorf("use -model or -graph, not both")
	case modelList != "":
		var gs []*graph.Graph
		for _, name := range splitNames(modelList) {
			g, err := models.Load(name)
			if err != nil {
				return nil, err
			}
			gs = append(gs, g)
		}
		return gs, nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := graph.ReadJSON(f)
		if err != nil {
			return nil, err
		}
		return []*graph.Graph{g}, nil
	default:
		return nil, fmt.Errorf("one of -model or -graph is required (models: %v)", models.Names())
	}
}

func describe(g *graph.Graph) {
	st := g.Stats()
	fmt.Printf("graph %s: |V|=%d deg(V)=%d depth=%d params=%.2f MiB\n",
		g.Name, st.V, st.Deg, st.Depth, float64(g.TotalParamBytes())/(1<<20))
}

func report(g *graph.Graph, s sched.Schedule, label string, solve time.Duration, simulate bool, dotPath string) {
	cost := s.Evaluate(g)
	fmt.Printf("scheduler %s: solve time %v\n", label, solve)
	fmt.Printf("objective: %v\n", cost)
	for k, m := range s.StageParamBytes(g) {
		fmt.Printf("  stage %d: %8.3f MiB params\n", k, float64(m)/(1<<20))
	}
	if simulate {
		rep, err := tpu.Simulate(g, s, tpu.Coral())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated pipeline: bottleneck %v, fill latency %v, %.1f inf/s, %.3f mJ/inf\n",
			rep.Bottleneck, rep.Latency, rep.Throughput(), rep.EnergyPerInference*1e3)
	}
	if dotPath != "" {
		if err := os.WriteFile(dotPath, []byte(g.DOT(s.Stage)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", dotPath)
	}
}

// deadlineHit reports whether the solve was cut short by the -timeout
// budget. It checks elapsed time besides ctx.Err() because a solver that
// observes its deadline returns concurrently with (and sometimes slightly
// before) the context timer firing.
func deadlineHit(ctx context.Context, budget, elapsed time.Duration) bool {
	return ctx.Err() != nil || elapsed >= budget
}

func runSingle(ctx context.Context, budget time.Duration, b solver.Scheduler, g *graph.Graph, stages int, simulate bool, dotPath string) {
	describe(g)
	start := time.Now()
	s, info, err := solver.ScheduleInfo(ctx, b, g, stages)
	if err != nil {
		log.Fatal(err)
	}
	label := b.Name()
	switch {
	case info.Truncated:
		// Budget hit (deadline or state cap): the backend handed back an
		// incumbent with no optimality proof.
		label += " (budget hit; incumbent, not proven optimal)"
	case info.OptimalityProven:
		label += " (proven optimal peak)"
	}
	report(g, s, label, time.Since(start), simulate, dotPath)
}

func runPortfolio(ctx context.Context, budget time.Duration, names []string, g *graph.Graph, stages int, simulate bool, dotPath string) {
	describe(g)
	backends, err := solver.Resolve(names...)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := solver.Portfolio(ctx, backends, g, stages)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var cells [][]string
	for _, o := range res.Outcomes {
		status := o.Cost.String()
		if o.Err != nil {
			status = "error: " + o.Err.Error()
		}
		mark := ""
		if o.Winner {
			mark = "*"
		}
		cells = append(cells, []string{mark, o.Backend, status, o.Elapsed.Round(time.Microsecond).String()})
	}
	fmt.Print(bench.RenderTable([]string{"", "backend", "outcome", "solve time"}, cells))
	fmt.Println()
	label := "portfolio winner " + res.Backend
	if deadlineHit(ctx, budget, elapsed) {
		label += " (deadline hit; anytime members returned incumbents)"
	}
	report(g, res.Schedule, label, elapsed, simulate, dotPath)
}

func runBatch(ctx context.Context, b solver.Scheduler, graphs []*graph.Graph, stages, jobs int) {
	start := time.Now()
	results, err := solver.Batch(ctx, b, graphs, stages, jobs)
	elapsed := time.Since(start)
	var cells [][]string
	for _, r := range results {
		outcome := r.Cost.String()
		if r.Err != nil {
			outcome = "error: " + r.Err.Error()
		}
		cached := ""
		if r.CacheHit {
			cached = "hit"
		}
		cells = append(cells, []string{r.Graph.Name, outcome, r.Elapsed.Round(time.Microsecond).String(), cached})
	}
	fmt.Print(bench.RenderTable([]string{"graph", "outcome", "solve time", "cache"}, cells))
	fmt.Printf("\nscheduled %d graphs with %d workers in %v\n", len(graphs), jobs, elapsed)
	failed, cut := 0, 0
	for _, r := range results {
		switch {
		case r.Err == nil:
		case errors.Is(r.Err, context.DeadlineExceeded) || errors.Is(r.Err, context.Canceled):
			cut++
		default:
			failed++
		}
	}
	switch {
	case failed > 0:
		log.Fatalf("%d of %d graphs failed", failed, len(results))
	case cut > 0:
		log.Fatalf("deadline hit: %d of %d graphs were not scheduled", cut, len(results))
	case err != nil:
		// Deadline reached, yet every graph got an (anytime) schedule —
		// informational, not a failure.
		fmt.Printf("note: deadline hit mid-batch (%v); anytime backends returned incumbents\n", err)
	}
}
