// Command respect-schedule schedules a DNN computational graph onto an
// n-stage Edge TPU pipeline with a chosen scheduler, reports the memory /
// communication objective, and simulates on-chip inference.
//
// Examples:
//
//	respect-schedule -model ResNet152 -stages 6 -scheduler exact
//	respect-schedule -model Xception -stages 4 -scheduler rl -agent respect.gob
//	respect-schedule -graph my.json -stages 4 -scheduler compiler -dot out.dot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"respect/internal/exact"
	"respect/internal/graph"
	"respect/internal/heur"
	"respect/internal/models"
	"respect/internal/ptrnet"
	"respect/internal/rl"
	"respect/internal/sched"
	"respect/internal/tpu"

	"respect/internal/embed"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("respect-schedule: ")

	var (
		modelName = flag.String("model", "", "model-zoo graph (one of respect's twelve ImageNet models)")
		graphPath = flag.String("graph", "", "path to a graph JSON (alternative to -model)")
		stages    = flag.Int("stages", 4, "pipeline stages")
		scheduler = flag.String("scheduler", "exact", "rl | exact | exact-ilp-grade | compiler | list | hu | force | dp | anneal")
		agentPath = flag.String("agent", "", "trained agent weights (required for -scheduler rl)")
		timeout   = flag.Duration("timeout", 60*time.Second, "exact solver budget")
		samples   = flag.Int("samples", 0, "extra stochastic decodes for -scheduler rl (best-of-K)")
		beam      = flag.Int("beam", 0, "beam width for -scheduler rl (overrides greedy decode)")
		dotPath   = flag.String("dot", "", "write a stage-colored Graphviz rendering here")
		simulate  = flag.Bool("sim", true, "simulate pipelined inference on the Coral platform model")
	)
	flag.Parse()

	g, err := loadGraph(*modelName, *graphPath)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("graph %s: |V|=%d deg(V)=%d depth=%d params=%.2f MiB\n",
		g.Name, st.V, st.Deg, st.Depth, float64(g.TotalParamBytes())/(1<<20))

	start := time.Now()
	s, note, err := run(*scheduler, g, *stages, *agentPath, *timeout, *samples, *beam)
	if err != nil {
		log.Fatal(err)
	}
	solve := time.Since(start)

	s = sched.PostProcess(g, s)
	cost := s.Evaluate(g)
	fmt.Printf("scheduler %s%s: solve time %v\n", *scheduler, note, solve)
	fmt.Printf("objective: %v\n", cost)
	for k, m := range s.StageParamBytes(g) {
		fmt.Printf("  stage %d: %8.3f MiB params\n", k, float64(m)/(1<<20))
	}

	if *simulate {
		rep, err := tpu.Simulate(g, s, tpu.Coral())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated pipeline: bottleneck %v, fill latency %v, %.1f inf/s, %.3f mJ/inf\n",
			rep.Bottleneck, rep.Latency, rep.Throughput(), rep.EnergyPerInference*1e3)
	}

	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(g.DOT(s.Stage)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
}

func loadGraph(model, path string) (*graph.Graph, error) {
	switch {
	case model != "" && path != "":
		return nil, fmt.Errorf("use -model or -graph, not both")
	case model != "":
		return models.Load(model)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadJSON(f)
	default:
		return nil, fmt.Errorf("one of -model or -graph is required (models: %v)", models.Names())
	}
}

func run(name string, g *graph.Graph, stages int, agentPath string, timeout time.Duration, samples, beam int) (sched.Schedule, string, error) {
	switch name {
	case "rl":
		if agentPath == "" {
			return sched.Schedule{}, "", fmt.Errorf("-scheduler rl needs -agent (train one with respect-train)")
		}
		m, err := ptrnet.LoadFile(agentPath)
		if err != nil {
			return sched.Schedule{}, "", err
		}
		if beam > 1 {
			s, err := rl.ScheduleBeam(m, embed.Default(), g, stages, beam)
			return s, fmt.Sprintf(" (beam width %d)", beam), err
		}
		if samples > 0 {
			s, err := rl.ScheduleSampled(m, embed.Default(), g, stages, samples, 1)
			return s, fmt.Sprintf(" (best of %d samples + greedy)", samples), err
		}
		s, err := rl.Schedule(m, embed.Default(), g, stages)
		return s, "", err
	case "exact":
		res := exact.Solve(g, stages, exact.Options{Timeout: timeout, MaxStates: 200_000_000})
		note := ""
		if !res.Optimal {
			note = " (budget hit; incumbent, not proven optimal)"
		}
		return res.Schedule, note, nil
	case "exact-ilp-grade":
		res := exact.Solve(g, stages, exact.Options{Timeout: timeout, MaxStates: 200_000_000, TieBreakCross: true})
		note := ""
		if !res.Optimal {
			note = " (budget hit; incumbent, not proven optimal)"
		}
		return res.Schedule, note, nil
	case "compiler":
		return heur.GreedyBalanced(g, stages), "", nil
	case "list":
		return heur.ListSchedule(g, stages), "", nil
	case "hu":
		return heur.HuLevel(g, stages), "", nil
	case "force":
		return heur.ForceDirected(g, stages), "", nil
	case "dp":
		return heur.DPBudget(g, stages), "", nil
	case "anneal":
		return heur.Annealed(g, stages, 5000, 1), "", nil
	default:
		return sched.Schedule{}, "", fmt.Errorf("unknown scheduler %q", name)
	}
}
