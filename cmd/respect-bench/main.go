// Command respect-bench regenerates every table and figure of the paper's
// evaluation on this reproduction's substrates (Edge TPU simulator,
// compiler emulation, exact solvers):
//
//	-exp table1    Table I  — model statistics
//	-exp fig3      Figure 3 — schedule solving time (RL vs compiler vs ILP)
//	-exp fig4      Figure 4 — pipelined on-chip inference runtime
//	-exp fig5      Figure 5 — gap-to-optimal parameter caching
//	-exp ablation  training-design ablations from DESIGN.md
//	-exp postproc  post-inference repair study
//	-exp heur      backend quality/latency comparison (registry-enumerated)
//	-exp portfolio concurrent backend-portfolio race (rl vs heur vs exact)
//	-exp all       everything above
//
// A trained agent can be supplied with -agent; otherwise one is trained
// in-process (-train-iters controls how long).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"respect/internal/bench"
	"respect/internal/embed"
	"respect/internal/models"
	"respect/internal/ptrnet"
	"respect/internal/rl"
	"respect/internal/solver"
	"respect/internal/tpu"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("respect-bench: ")

	var (
		exp        = flag.String("exp", "all", "experiment: table1|fig3|fig4|fig5|ablation|postproc|heur|portfolio|all")
		agentPath  = flag.String("agent", "", "trained agent weights (otherwise trains in-process)")
		trainIters = flag.Int("train-iters", 200, "in-process training iterations when -agent is absent")
		ilpBudget  = flag.Duration("ilp-budget", 0, "per-instance budget for the generic MILP column of fig3 (0 skips it; the paper-faithful setting is 60s+)")
		effort     = flag.Int("compiler-effort", 256, "compiler emulation effort")
		quickSet   = flag.Bool("quick", false, "restrict fig3/fig4/fig5 to three small models")
		csvDir     = flag.String("csv", "", "also write fig3/fig4/fig5 rows as CSV files into this directory")
		seed       = flag.Int64("seed", 1, "seed for in-process training")
	)
	flag.Parse()

	var agent *ptrnet.Model
	ecfg := embed.Default()
	var trainer *rl.Trainer
	needAgent := map[string]bool{"fig3": true, "fig4": true, "fig5": true, "postproc": true, "portfolio": true, "all": true}
	if needAgent[*exp] {
		if *agentPath != "" {
			m, err := ptrnet.LoadFile(*agentPath)
			if err != nil {
				log.Fatal(err)
			}
			agent = m
			fmt.Printf("loaded agent from %s\n", *agentPath)
		} else {
			fmt.Printf("training agent in-process (%d iterations)...\n", *trainIters)
			tr, err := bench.TrainQuick(*seed, *trainIters)
			if err != nil {
				log.Fatal(err)
			}
			trainer = tr
			agent = tr.Model
			fmt.Printf("held-out greedy imitation reward: %.4f\n", tr.EvalGreedy(tr.Model))
		}
	}

	if agent != nil {
		// Publish the agent's decode modes so registry-driven experiments
		// (heur study, portfolio) can race them by name.
		for _, b := range solver.AgentBackends(agent, ecfg) {
			if err := solver.Replace(b); err != nil {
				log.Fatal(err)
			}
		}
	}

	names := models.TableINames()
	fig5names := models.Figure5Names()
	if *quickSet {
		names = []string{"Xception", "ResNet50", "DenseNet121"}
		fig5names = names
	}

	run := func(name string, f func() error) {
		if *exp != name && *exp != "all" {
			return
		}
		fmt.Printf("\n===== %s =====\n", name)
		start := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("(%s finished in %v)\n", name, time.Since(start))
	}

	run("table1", func() error {
		rows := bench.TableI()
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Model,
				fmt.Sprint(r.Stats.V), fmt.Sprint(r.Stats.Deg), fmt.Sprint(r.Stats.Depth),
				fmt.Sprint(r.Match)})
		}
		fmt.Print(bench.RenderTable([]string{"model", "|V|", "deg(V)", "depth", "matches paper"}, cells))
		return nil
	})

	run("fig3", func() error {
		rows, err := bench.Fig3(agent, ecfg, bench.Fig3Config{
			Models: names, ILPBudget: *ilpBudget, CompilerEffort: *effort,
		})
		if err != nil {
			return err
		}
		bench.SortRows(rows)
		var cells [][]string
		for _, r := range rows {
			ilpCell := "skipped"
			if r.ILP > 0 {
				ilpCell = r.ILP.Round(time.Millisecond).String()
				if !r.ILPOptimal {
					ilpCell += " (timeout)"
				}
			}
			cells = append(cells, []string{r.Model, fmt.Sprint(r.V), fmt.Sprint(r.Stages),
				r.RL.Round(time.Microsecond).String(),
				r.Compiler.Round(time.Millisecond).String(),
				r.CombExact.Round(time.Millisecond).String(),
				ilpCell,
				fmt.Sprintf("%.1fx", r.SpeedupVsCompiler),
				speedupCell(r.SpeedupVsILP, r.ILPOptimal, r.ILP > 0),
			})
		}
		fmt.Print(bench.RenderTable([]string{"model", "|V|", "stages", "RL", "compiler", "exact-BB", "exact-ILP", "RL-vs-compiler", "RL-vs-ILP"}, cells))
		fmt.Println()
		fmt.Print(bench.SpeedupChart(rows, false))
		if *ilpBudget > 0 {
			fmt.Println()
			fmt.Print(bench.SpeedupChart(rows, true))
		}
		if *csvDir != "" {
			var c [][]string
			for _, r := range rows {
				c = append(c, []string{r.Model, strconv.Itoa(r.V), strconv.Itoa(r.Stages),
					strconv.FormatInt(r.RL.Microseconds(), 10),
					strconv.FormatInt(r.Compiler.Microseconds(), 10),
					strconv.FormatInt(r.CombExact.Microseconds(), 10),
					strconv.FormatInt(r.ILP.Microseconds(), 10),
					strconv.FormatBool(r.ILPOptimal)})
			}
			if err := writeCSV(*csvDir, "fig3.csv",
				[]string{"model", "V", "stages", "rl_us", "compiler_us", "exact_bb_us", "exact_ilp_us", "ilp_optimal"}, c); err != nil {
				return err
			}
		}
		return nil
	})

	run("fig4", func() error {
		rows, err := bench.Fig4(agent, ecfg, names, nil, tpu.Coral())
		if err != nil {
			return err
		}
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Model, fmt.Sprint(r.Stages),
				r.CompilerLatency.Round(time.Microsecond).String(),
				fmt.Sprintf("%.3f", r.RelExact),
				fmt.Sprintf("%.3f", r.RelRL),
				fmt.Sprintf("%.2fx", 1/r.RelRL),
			})
		}
		fmt.Print(bench.RenderTable([]string{"model", "stages", "compiler latency", "exact (rel)", "RESPECT (rel)", "RESPECT speedup"}, cells))
		for _, ns := range bench.Stages {
			fmt.Println()
			fmt.Print(bench.Fig4Chart(rows, ns))
		}
		if *csvDir != "" {
			var c [][]string
			for _, r := range rows {
				c = append(c, []string{r.Model, strconv.Itoa(r.Stages),
					strconv.FormatInt(r.CompilerLatency.Microseconds(), 10),
					fmt.Sprintf("%.5f", r.RelExact), fmt.Sprintf("%.5f", r.RelRL)})
			}
			if err := writeCSV(*csvDir, "fig4.csv",
				[]string{"model", "stages", "compiler_latency_us", "rel_exact", "rel_respect"}, c); err != nil {
				return err
			}
		}
		return nil
	})

	run("fig5", func() error {
		rows, err := bench.Fig5(agent, ecfg, fig5names, nil)
		if err != nil {
			return err
		}
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Model, fmt.Sprint(r.Stages),
				fmt.Sprintf("%.3f", r.OptimalMiB), fmt.Sprintf("%.3f", r.DeployableMiB),
				fmt.Sprintf("%.3f", r.RespectMiB),
				fmt.Sprintf("%.2f%%", r.GapPct), fmt.Sprintf("%.2f%%", r.DeployGapPct)})
		}
		fmt.Print(bench.RenderTable([]string{"model", "stages", "optimal MiB", "deployable-opt MiB", "RESPECT MiB", "gap", "deploy gap"}, cells))
		avg := bench.Fig5Averages(rows)
		fmt.Printf("\naverage gap-to-optimal: 4-stage %.2f%%, 5-stage %.2f%%, 6-stage %.2f%% (paper: 2.26%% / 2.74%% / 6.31%%)\n",
			avg[4], avg[5], avg[6])
		davg := bench.Fig5DeployAverages(rows)
		fmt.Printf("average gap to the deployable optimum (children rule): 4-stage %.2f%%, 5-stage %.2f%%, 6-stage %.2f%%\n",
			davg[4], davg[5], davg[6])
		for _, ns := range bench.Stages {
			fmt.Println()
			fmt.Print(bench.Fig5Chart(rows, ns))
		}
		if *csvDir != "" {
			var c [][]string
			for _, r := range rows {
				c = append(c, []string{r.Model, strconv.Itoa(r.Stages),
					fmt.Sprintf("%.5f", r.OptimalMiB), fmt.Sprintf("%.5f", r.RespectMiB),
					fmt.Sprintf("%.3f", r.GapPct)})
			}
			if err := writeCSV(*csvDir, "fig5.csv",
				[]string{"model", "stages", "optimal_mib", "respect_mib", "gap_pct"}, c); err != nil {
				return err
			}
		}
		return nil
	})

	run("ablation", func() error {
		rows, err := bench.Ablations(bench.DefaultAblation())
		if err != nil {
			return err
		}
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Variant, fmt.Sprintf("%.4f", r.GreedyReward),
				r.TrainTime.Round(time.Millisecond).String()})
		}
		fmt.Print(bench.RenderTable([]string{"variant", "held-out greedy reward", "train time"}, cells))
		return nil
	})

	run("postproc", func() error {
		tr := trainer
		if tr == nil {
			var err error
			tr, err = bench.TrainQuick(*seed, *trainIters)
			if err != nil {
				return err
			}
		}
		rows, err := bench.PostProcessAblation(tr, nil, nil)
		if err != nil {
			return err
		}
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Model, fmt.Sprint(r.Stages),
				fmt.Sprint(r.RawValid), fmt.Sprint(r.RawChildrenOK),
				fmt.Sprintf("%.3f", r.RawPeakMiB), fmt.Sprintf("%.3f", r.RepairedPeakMiB),
				fmt.Sprintf("%.3f", r.OptimalPeakMiB)})
		}
		fmt.Print(bench.RenderTable([]string{"model", "stages", "raw valid", "raw children-ok", "raw peak", "repaired peak", "optimal peak"}, cells))
		return nil
	})

	run("heur", func() error {
		fmt.Printf("registered backends: %s\n", strings.Join(solver.Names(), ", "))
		fmt.Printf("study set: %s\n\n", strings.Join(bench.StudyBackends(), ", "))
		for _, m := range []string{"ResNet152"} {
			rows, err := bench.HeuristicStudy(m, 6)
			if err != nil {
				return err
			}
			fmt.Printf("%s, 6 stages:\n", m)
			var cells [][]string
			for _, r := range rows {
				cells = append(cells, []string{r.Name, fmt.Sprintf("%.3f", r.PeakMiB),
					fmt.Sprintf("%.3f", r.CrossMiB), r.Elapsed.Round(time.Microsecond).String()})
			}
			fmt.Print(bench.RenderTable([]string{"backend", "peak MiB", "cross MiB", "solve time"}, cells))
		}
		return nil
	})

	run("portfolio", func() error {
		members := []string{"rl", "heur", "exact"}
		fmt.Printf("racing %v, %v per instance\n\n", members, 10*time.Second)
		rows, err := bench.PortfolioStudy(context.Background(), names, nil, members, 10*time.Second)
		if err != nil {
			return err
		}
		var cells [][]string
		for _, r := range rows {
			var outcomes []string
			for _, o := range r.Outcomes {
				if o.Err != nil {
					outcomes = append(outcomes, o.Backend+": err")
					continue
				}
				outcomes = append(outcomes, fmt.Sprintf("%s: %.3f MiB / %v",
					o.Backend, float64(o.Cost.PeakParamBytes)/(1<<20), o.Elapsed.Round(time.Millisecond)))
			}
			cells = append(cells, []string{r.Model, fmt.Sprint(r.Stages), r.Winner,
				fmt.Sprintf("%.3f", r.PeakMiB), r.Elapsed.Round(time.Millisecond).String(),
				strings.Join(outcomes, "; ")})
		}
		fmt.Print(bench.RenderTable([]string{"model", "stages", "winner", "peak MiB", "race time", "per-backend"}, cells))
		return nil
	})
}

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(bench.RenderCSV(header, rows)), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func speedupCell(v float64, optimal, ran bool) string {
	if !ran {
		return "-"
	}
	if optimal {
		return fmt.Sprintf("%.0fx", v)
	}
	return fmt.Sprintf(">=%.0fx", v)
}
