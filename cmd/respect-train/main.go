// Command respect-train trains a RESPECT scheduling agent on synthetic
// DAGs (the paper's data-independent setup) and writes the weights to a
// file for respect-schedule and respect-bench to reuse.
//
// Example:
//
//	respect-train -iters 500 -hidden 64 -out respect.gob
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"respect/internal/rl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("respect-train: ")

	var (
		out      = flag.String("out", "respect.gob", "output weights file")
		iters    = flag.Int("iters", 300, "training iterations")
		batch    = flag.Int("batch", 16, "graphs per iteration")
		hidden   = flag.Int("hidden", 64, "LSTM/attention width (paper: 256)")
		nodes    = flag.Int("nodes", 30, "synthetic graph size |V| (paper: 30)")
		stages   = flag.Int("stages", 4, "pipeline stages during training")
		lr       = flag.Float64("lr", 2e-3, "Adam learning rate")
		seed     = flag.Int64("seed", 1, "random seed")
		supervis = flag.Bool("supervised", false, "teacher-forcing ablation instead of REINFORCE")
		quiet    = flag.Bool("q", false, "suppress per-iteration progress")
	)
	flag.Parse()

	tr, err := rl.NewTrainer(rl.Config{
		Hidden: *hidden, NumNodes: *nodes, Stages: *stages,
		Iterations: *iters, BatchSize: *batch, LR: *lr, Seed: *seed,
		Supervised: *supervis,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("initial greedy reward (held-out): %.4f\n", tr.EvalGreedy(tr.Model))
	err = tr.Train(func(st rl.IterStats) {
		if !*quiet && (st.Iter%10 == 0 || st.Iter == *iters-1) {
			fmt.Printf("iter %4d  reward %.4f  baseline %.4f  |grad| %.3f  entropy %.3f  (%v)\n",
				st.Iter, st.MeanReward, st.MeanBase, st.GradNorm, st.MeanEntropy, st.Elapsed)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final greedy reward (held-out): %.4f\n", tr.EvalGreedy(tr.Model))

	if err := tr.Model.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(*out)
	fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
}
