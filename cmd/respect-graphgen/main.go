// Command respect-graphgen exports computational graphs — the model zoo's
// twelve ImageNet DAGs or synthetic training graphs — as JSON or Graphviz,
// and prints their Table I statistics.
//
// Examples:
//
//	respect-graphgen -list
//	respect-graphgen -model DenseNet121 -json densenet121.json
//	respect-graphgen -synth -nodes 30 -deg 4 -count 3 -json synth.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"respect/internal/graph"
	"respect/internal/models"
	"respect/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("respect-graphgen: ")

	var (
		list      = flag.Bool("list", false, "list model-zoo graphs with their statistics")
		modelName = flag.String("model", "", "model-zoo graph to export")
		doSynth   = flag.Bool("synth", false, "sample synthetic training graphs instead")
		nodes     = flag.Int("nodes", 30, "synthetic |V|")
		deg       = flag.Int("deg", 4, "synthetic max in-degree")
		count     = flag.Int("count", 1, "number of synthetic graphs")
		seed      = flag.Int64("seed", 1, "synthetic sampler seed")
		jsonPath  = flag.String("json", "", "write graph JSON here (use %d for multi-graph synth output)")
		dotPath   = flag.String("dot", "", "write Graphviz here")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-20s %6s %6s %6s %12s\n", "model", "|V|", "deg", "depth", "params(MiB)")
		for _, name := range models.Names() {
			g := models.MustLoad(name)
			s := g.Stats()
			fmt.Printf("%-20s %6d %6d %6d %12.2f\n", name, s.V, s.Deg, s.Depth,
				float64(g.TotalParamBytes())/(1<<20))
		}
	case *modelName != "":
		g, err := models.Load(*modelName)
		if err != nil {
			log.Fatal(err)
		}
		emit(g, *jsonPath, *dotPath)
	case *doSynth:
		cfg := synth.DefaultConfig(*deg)
		cfg.NumNodes = *nodes
		s, err := synth.NewSampler(cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *count; i++ {
			g := s.Sample()
			jp := *jsonPath
			if jp != "" && *count > 1 {
				jp = fmt.Sprintf(insertIndex(jp), i)
			}
			emit(g, jp, "")
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// insertIndex turns "x.json" into "x.%d.json" unless %d is already there.
func insertIndex(path string) string {
	for i := 0; i+1 < len(path); i++ {
		if path[i] == '%' && path[i+1] == 'd' {
			return path
		}
	}
	ext := ""
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '.' {
			base, ext = path[:i], path[i:]
			break
		}
	}
	return base + ".%d" + ext
}

func emit(g *graph.Graph, jsonPath, dotPath string) {
	s := g.Stats()
	fmt.Printf("%s: |V|=%d deg=%d depth=%d edges=%d params=%.2f MiB\n",
		g.Name, s.V, s.Deg, s.Depth, g.NumEdges(), float64(g.TotalParamBytes())/(1<<20))
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if dotPath != "" {
		if err := os.WriteFile(dotPath, []byte(g.DOT(nil)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", dotPath)
	}
}
